package journal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
)

// writeN builds a journal with n records cycling the three ops.
func writeN(n int) *Log {
	l := New()
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/data/f%d", i%4)
		switch i % 3 {
		case 0:
			l.Append(OpWrite, path, []byte(fmt.Sprintf("w%d\n", i)))
		case 1:
			l.Append(OpAppend, path, []byte(fmt.Sprintf("a%d\n", i)))
		default:
			l.Append(OpDelete, path, nil)
		}
	}
	return l
}

func TestRoundTrip(t *testing.T) {
	l := New()
	l.Append(OpWrite, "/data/a", []byte("one\ntwo\n"))
	l.Append(OpAppend, "/data/a", []byte("three\n"))
	l.Append(OpDelete, "/data/a", nil)
	l.Append(OpWrite, "/data/empty", nil)

	recs, st, err := Replay(l.Bytes())
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.TornTail || st.Records != 4 || st.Bytes != l.Size() {
		t.Fatalf("stats = %+v, want 4 clean records over %d bytes", st, l.Size())
	}
	want := []Record{
		{Seq: 1, Op: OpWrite, Path: "/data/a", Data: []byte("one\ntwo\n")},
		{Seq: 2, Op: OpAppend, Path: "/data/a", Data: []byte("three\n")},
		{Seq: 3, Op: OpDelete, Path: "/data/a"},
		{Seq: 4, Op: OpWrite, Path: "/data/empty"},
	}
	for i, w := range want {
		g := recs[i]
		if g.Seq != w.Seq || g.Op != w.Op || g.Path != w.Path || !bytes.Equal(g.Data, w.Data) {
			t.Errorf("record %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestEmptyJournal(t *testing.T) {
	recs, st, err := Replay(New().Bytes())
	if err != nil || len(recs) != 0 || st.TornTail {
		t.Fatalf("empty journal: recs=%v st=%+v err=%v", recs, st, err)
	}
	if _, _, err := Replay(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nil journal should be ErrCorrupt, got %v", err)
	}
	if _, _, err := Replay([]byte("NOTMAGIC")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic should be ErrCorrupt, got %v", err)
	}
}

// Truncating anywhere strictly inside the final record must replay the
// full committed prefix and flag a torn tail; truncating at a frame
// boundary is a clean (shorter) journal.
func TestTornTailEveryTruncation(t *testing.T) {
	l := writeN(5)
	img := l.Bytes()
	// Locate every frame boundary by replaying prefixes.
	boundaries := []int64{headerSize}
	for k := int64(1); k <= 5; k++ {
		boundaries = append(boundaries, int64(len(PrefixRecords(img, k))))
	}
	for cut := int64(headerSize); cut <= int64(len(img)); cut++ {
		recs, st, err := Replay(img[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// How many full records fit below the cut?
		wantK := int64(0)
		for i, b := range boundaries {
			if cut >= b {
				wantK = int64(i)
			}
		}
		atBoundary := cut == boundaries[wantK]
		if int64(len(recs)) != wantK {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(recs), wantK)
		}
		if st.TornTail == atBoundary {
			t.Fatalf("cut %d: TornTail=%v, at boundary=%v", cut, st.TornTail, atBoundary)
		}
		if st.Bytes != boundaries[wantK] {
			t.Fatalf("cut %d: clean bytes %d, want %d", cut, st.Bytes, boundaries[wantK])
		}
	}
}

// A flipped byte in the final record (frame intact, CRC wrong) is a torn
// tail; the same flip in an interior record is corruption.
func TestCorruptionVsTornTail(t *testing.T) {
	l := writeN(4)
	img := l.Bytes()
	lastStart := int64(len(PrefixRecords(img, 3)))

	tail := append([]byte(nil), img...)
	tail[lastStart+frameFixed] ^= 0xFF // a path byte of the final record
	recs, st, err := Replay(tail)
	if err != nil || !st.TornTail || len(recs) != 3 {
		t.Fatalf("flipped tail byte: recs=%d st=%+v err=%v, want torn tail with 3 records", len(recs), st, err)
	}

	mid := append([]byte(nil), img...)
	firstStart := int64(len(PrefixRecords(img, 0)))
	mid[firstStart+frameFixed] ^= 0xFF
	if _, _, err := Replay(mid); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior flip should be ErrCorrupt, got %v", err)
	}
}

func TestTear(t *testing.T) {
	l := writeN(3)
	full := l.Size()
	if l.Tear(0) || l.Tear(full) {
		t.Fatal("degenerate tears must be refused")
	}
	if !l.Tear(5) {
		t.Fatal("Tear(5) refused")
	}
	if l.Records() != 2 {
		t.Fatalf("Records after tear = %d, want 2", l.Records())
	}
	recs, st, err := Replay(l.Bytes())
	if err != nil || !st.TornTail || len(recs) != 2 {
		t.Fatalf("after tear: recs=%d st=%+v err=%v", len(recs), st, err)
	}
	if New().Tear(1) {
		t.Fatal("tearing an empty journal must be refused")
	}
}

func TestPrefixRecords(t *testing.T) {
	l := writeN(6)
	img := l.Bytes()
	for k := int64(0); k <= 7; k++ {
		p := PrefixRecords(img, k)
		want := k
		if want > 6 {
			want = 6
		}
		if got := CountRecords(p); got != want {
			t.Fatalf("PrefixRecords(%d): %d records, want %d", k, got, want)
		}
	}
}

// FuzzJournalReplay: a random committed sequence cut at a random point
// must replay exactly the records whose frames fit below the cut, with
// the tail flagged torn unless the cut lands on a frame boundary. This
// is the crash-safety property Recover leans on.
func FuzzJournalReplay(f *testing.F) {
	f.Add(uint64(1), uint(3), uint(10))
	f.Add(uint64(42), uint(0), uint(0))
	f.Add(uint64(7), uint(12), uint(5000))
	f.Fuzz(func(t *testing.T, seed uint64, n uint, cutAt uint) {
		n %= 24
		rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
		l := New()
		var boundaries []int64
		boundaries = append(boundaries, int64(headerSize))
		for i := uint(0); i < n; i++ {
			op := Op(rng.IntN(3) + 1)
			path := fmt.Sprintf("/f/%d", rng.IntN(5))
			var data []byte
			if op != OpDelete {
				data = make([]byte, rng.IntN(64))
				for j := range data {
					data[j] = byte(rng.IntN(256))
				}
			}
			l.Append(op, path, data)
			boundaries = append(boundaries, l.Size())
		}
		img := l.Bytes()
		cut := int64(headerSize) + int64(cutAt)%(l.Size()-int64(headerSize)+1)
		recs, st, err := Replay(img[:cut])
		if err != nil {
			t.Fatalf("seed=%d n=%d cut=%d: %v", seed, n, cut, err)
		}
		wantK := 0
		for i, b := range boundaries {
			if cut >= b {
				wantK = i
			}
		}
		if len(recs) != wantK {
			t.Fatalf("cut=%d: %d records, want %d", cut, len(recs), wantK)
		}
		if st.TornTail != (cut != boundaries[wantK]) {
			t.Fatalf("cut=%d: TornTail=%v, boundary=%d", cut, st.TornTail, boundaries[wantK])
		}
		// Replayed prefix must byte-match the records as written.
		orig, _, _ := Replay(img)
		for i, r := range recs {
			o := orig[i]
			if r.Seq != o.Seq || r.Op != o.Op || r.Path != o.Path || !bytes.Equal(r.Data, o.Data) {
				t.Fatalf("record %d mismatch after cut", i)
			}
		}
	})
}
