package colseg_test

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/colscan"
	"repro/internal/colseg"
)

// memStore is an in-memory colseg.Store: path → sidecar bytes.
type memStore map[string][]byte

func (m memStore) SidecarStat(path string) (int64, bool) {
	sc, ok := m[path]
	return int64(len(sc)), ok
}

func (m memStore) ReadSidecarAt(path string, off int64, p []byte) (int, error) {
	sc, ok := m[path]
	if !ok {
		return 0, errors.New("memStore: no sidecar")
	}
	if off < 0 || off >= int64(len(sc)) {
		return 0, nil
	}
	return copy(p, sc[off:]), nil
}

// byteFile adapts a byte slice to colscan.ReaderAt for the text-decode
// oracle.
type byteFile []byte

func (b byteFile) ReadAt(_ string, off int64, p []byte) (int, error) {
	if off < 0 || off >= int64(len(b)) {
		return 0, errors.New("byteFile: offset out of range")
	}
	return copy(p, b[off:]), nil
}

// chunkGeom tiles each append segment at chunkSize — the exact geometry
// dfs.Splits emits and the sidecar footer is keyed by.
func chunkGeom(segments []int64, size, chunkSize int64) [][2]int64 {
	var out [][2]int64
	for si, segStart := range segments {
		segEnd := size
		if si+1 < len(segments) {
			segEnd = segments[si+1]
		}
		for off := segStart; off < segEnd; off += chunkSize {
			end := off + chunkSize
			if end > segEnd {
				end = segEnd
			}
			out = append(out, [2]int64{off, end - off})
		}
	}
	return out
}

// diffBlocks compares two decoded blocks record by record, values bit
// for bit; "" means identical.
func diffBlocks(got, want *colscan.Block) string {
	if got.NumRecords() != want.NumRecords() {
		return fmt.Sprintf("%d records, want %d", got.NumRecords(), want.NumRecords())
	}
	for i := 0; i < want.NumRecords(); i++ {
		if got.Start(i) != want.Start(i) {
			return fmt.Sprintf("record %d: start %d, want %d", i, got.Start(i), want.Start(i))
		}
		if math.Float64bits(got.Value(i)) != math.Float64bits(want.Value(i)) {
			return fmt.Sprintf("record %d: value bits %x, want %x", i,
				math.Float64bits(got.Value(i)), math.Float64bits(want.Value(i)))
		}
		if got.Key(i) != want.Key(i) {
			return fmt.Sprintf("record %d: key %q, want %q", i, got.Key(i), want.Key(i))
		}
		if got.RecLen(i) != want.RecLen(i) {
			return fmt.Sprintf("record %d: reclen %d, want %d", i, got.RecLen(i), want.RecLen(i))
		}
	}
	return ""
}

// checkRoundTrip builds a sidecar over data (single segment), loads
// every chunk through a Reader and compares each block against a text
// decode of the same split.
func checkRoundTrip(t *testing.T, f colscan.Format, data []byte, chunkSize int64) {
	t.Helper()
	const version = 3
	sc, err := colseg.Build(f, version, data, []int64{0}, chunkSize)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	info, err := colseg.Inspect(sc)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	geom := chunkGeom([]int64{0}, int64(len(data)), chunkSize)
	if info.Version != version || info.Cover != int64(len(data)) ||
		info.Format != f || info.Chunks != len(geom) {
		t.Fatalf("Inspect = %+v, want version %d cover %d format %d chunks %d",
			info, version, len(data), f, len(geom))
	}
	rd := colseg.NewReader(memStore{"/f": sc})
	for _, g := range geom {
		key := colscan.BlockKey{Path: "/f", Version: version, Offset: g[0], Length: g[1], Format: f}
		blk, ok, err := rd.LoadColumns(key)
		if err != nil || !ok {
			t.Fatalf("LoadColumns [%d,+%d): ok=%v err=%v", g[0], g[1], ok, err)
		}
		want, err := colscan.Decode(byteFile(data), "/f", int64(len(data)), g[0], g[1], f)
		if err != nil {
			t.Fatalf("text Decode [%d,+%d): %v", g[0], g[1], err)
		}
		if d := diffBlocks(blk, want); d != "" {
			t.Fatalf("chunk [%d,+%d): %s", g[0], g[1], d)
		}
	}
}

func numericData(n int) []byte {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		// Vary the rendering so parsing (not just byte copying) is
		// exercised: plain ints, decimals, exponents, signs.
		switch i % 4 {
		case 0:
			fmt.Fprintf(&buf, "%d\n", i*7-n)
		case 1:
			fmt.Fprintf(&buf, "%0.6f\n", float64(i)/7)
		case 2:
			fmt.Fprintf(&buf, "%.3e\n", float64(i*i)+0.5)
		default:
			fmt.Fprintf(&buf, " -%d.25 \n", i)
		}
	}
	return buf.Bytes()
}

func kvData(n int) []byte {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "host-%d\t%0.4f\n", i%7, float64((i*i)%997)/3)
	}
	return buf.Bytes()
}

func TestRoundTripNumeric(t *testing.T) {
	data := numericData(400)
	for _, cs := range []int64{64, 257, 4096, int64(len(data)) + 10} {
		checkRoundTrip(t, colscan.FormatNumeric, data, cs)
	}
	// Unterminated final record.
	checkRoundTrip(t, colscan.FormatNumeric, []byte("1\n2\n3.5"), 4)
}

func TestRoundTripKV(t *testing.T) {
	data := kvData(400)
	for _, cs := range []int64{64, 257, 4096} {
		checkRoundTrip(t, colscan.FormatKV, data, cs)
	}
	// Empty value keys and a key-only dictionary of one entry.
	checkRoundTrip(t, colscan.FormatKV, []byte("k\t1\nk\t2\nk\t3\n"), 5)
}

// TestExtendByteStable pins the append contract: extending a prefix
// sidecar with the appended segment yields byte-for-byte the sidecar a
// full Build over both segments produces — pre-append chunks never move.
func TestExtendByteStable(t *testing.T) {
	const version, cs = 9, 128
	data := numericData(300)
	// Cut at a record boundary past the midpoint, like dfs appends do.
	cut := int64(bytes.IndexByte(data[len(data)/2:], '\n')+len(data)/2) + 1
	whole, err := colseg.Build(colscan.FormatNumeric, version, data, []int64{0, cut}, cs)
	if err != nil {
		t.Fatal(err)
	}
	part, err := colseg.Build(colscan.FormatNumeric, version, data[:cut], []int64{0}, cs)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := colseg.Extend(part, version, data[cut:], cut, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ext, whole) {
		t.Fatalf("Extend diverged from whole-file Build (%d vs %d bytes)", len(ext), len(whole))
	}
	// The prefix sidecar's chunk region survives verbatim inside the
	// extended one (only the header's cover field and the footer moved).
	pinfo, err := colseg.Inspect(part)
	if err != nil {
		t.Fatal(err)
	}
	chunkRegion := part[25 : len(part)-12-36*pinfo.Chunks] // header / entries+tail stripped
	if !bytes.Contains(ext, chunkRegion) {
		t.Fatal("pre-append chunk bytes were rewritten by Extend")
	}
}

func TestExtendRejectsMismatch(t *testing.T) {
	data := []byte("1\n2\n3\n4\n5\n6\n")
	sc, err := colseg.Build(colscan.FormatNumeric, 1, data, []int64{0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := colseg.Extend(sc, 2, []byte("7\n"), int64(len(data)), 4); err == nil {
		t.Fatal("Extend accepted a generation mismatch")
	}
	if _, err := colseg.Extend(sc, 1, []byte("7\n"), int64(len(data))+3, 4); err == nil {
		t.Fatal("Extend accepted a coverage gap")
	}
}

func TestBuildRejectsBadRecords(t *testing.T) {
	cases := []struct {
		f    colscan.Format
		data string
	}{
		{colscan.FormatNumeric, "1\nNaN\n2\n"},
		{colscan.FormatNumeric, "1\n+Inf\n"},
		{colscan.FormatNumeric, "1\n\n2\n"},
		{colscan.FormatNumeric, "1\nnot a number\n"},
		{colscan.FormatKV, "k\t1\nno-tab-here\n"},
		{colscan.FormatKV, "k\tNaN\n"},
	}
	for _, c := range cases {
		if _, err := colseg.Build(c.f, 1, []byte(c.data), []int64{0}, 4); !errors.Is(err, colscan.ErrBadRecord) {
			t.Errorf("Build(%q) err = %v, want ErrBadRecord", c.data, err)
		}
	}
}

func TestBuildRejectsUnalignedSegment(t *testing.T) {
	data := []byte("11\n22\n33\n")
	if _, err := colseg.Build(colscan.FormatNumeric, 1, data, []int64{0, 4}, 4); err == nil {
		t.Fatal("Build accepted a segment boundary mid-record")
	}
	if _, err := colseg.Build(colscan.FormatNumeric, 1, data, []int64{3}, 4); err == nil {
		t.Fatal("Build accepted a segment list not starting at 0")
	}
}

// loadFirst asks the reader for the first chunk of the given sidecar
// bytes under the given key fields.
func loadFirst(sc []byte, version int64, f colscan.Format, chunkLen int64) (*colscan.Block, bool, error) {
	rd := colseg.NewReader(memStore{"/f": sc})
	return rd.LoadColumns(colscan.BlockKey{Path: "/f", Version: version, Offset: 0, Length: chunkLen, Format: f})
}

func TestReaderCorruption(t *testing.T) {
	data := numericData(100)
	sc, err := colseg.Build(colscan.FormatNumeric, 5, data, []int64{0}, 128)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("payload bit flip", func(t *testing.T) {
		bad := append([]byte(nil), sc...)
		bad[30] ^= 0x40 // inside the first chunk payload
		_, ok, err := loadFirst(bad, 5, colscan.FormatNumeric, 128)
		if ok || !errors.Is(err, colseg.ErrCorrupt) {
			t.Fatalf("ok=%v err=%v, want ErrCorrupt", ok, err)
		}
	})
	t.Run("truncated footer", func(t *testing.T) {
		for _, cut := range []int{1, 12, 40} {
			bad := sc[:len(sc)-cut]
			_, ok, err := loadFirst(bad, 5, colscan.FormatNumeric, 128)
			if ok || !errors.Is(err, colseg.ErrCorrupt) {
				t.Fatalf("cut %d: ok=%v err=%v, want ErrCorrupt", cut, ok, err)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), sc...)
		bad[0] = 'X'
		_, ok, err := loadFirst(bad, 5, colscan.FormatNumeric, 128)
		if ok || !errors.Is(err, colseg.ErrCorrupt) {
			t.Fatalf("ok=%v err=%v, want ErrCorrupt", ok, err)
		}
	})
}

func TestReaderCleanMisses(t *testing.T) {
	data := numericData(100)
	sc, err := colseg.Build(colscan.FormatNumeric, 5, data, []int64{0}, 128)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, blk *colscan.Block, ok bool, err error) {
		t.Helper()
		if blk != nil || ok || err != nil {
			t.Fatalf("%s: got (%v, %v, %v), want clean miss", name, blk, ok, err)
		}
	}
	blk, ok, err := loadFirst(sc, 6, colscan.FormatNumeric, 128)
	check("stale generation", blk, ok, err)
	blk, ok, err = loadFirst(sc, 5, colscan.FormatKV, 128)
	check("format mismatch", blk, ok, err)
	blk, ok, err = loadFirst(sc, 5, colscan.FormatNumeric, 999) // no such chunk geometry
	check("uncovered split", blk, ok, err)
	rd := colseg.NewReader(memStore{})
	blk, ok, err = rd.LoadColumns(colscan.BlockKey{Path: "/f", Version: 5, Offset: 0, Length: 128, Format: colscan.FormatNumeric})
	check("no sidecar", blk, ok, err)
}

func TestInspectRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, []byte("short"), bytes.Repeat([]byte{0xAB}, 200)} {
		if _, err := colseg.Inspect(b); !errors.Is(err, colseg.ErrCorrupt) {
			t.Errorf("Inspect(%d garbage bytes) err = %v, want ErrCorrupt", len(b), err)
		}
	}
}
