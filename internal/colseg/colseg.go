// Package colseg is the persistent columnar segment format: a compact
// binary sidecar per dfs file that stores each split's decoded columns
// — record-start offsets, raw little-endian float64 values and, for the
// grouped route, an interned key dictionary — so a cold read loads a
// colscan block with one bounds-checked copy instead of re-parsing
// row-oriented text. It is the zst side of the zng/zst row/column split
// (see SNIPPETS.md §1–2): the text file stays the durable row store and
// source of truth, the sidecar is a derived columnar cache that dfs
// builds at ingest and can always drop or rebuild.
//
// # Layout
//
// A sidecar is header, chunk payloads, footer:
//
//	header  (25 bytes)
//	  magic    8  "EARLCSG1"
//	  format   1  colscan.Format (1 numeric, 2 key\tvalue)
//	  version  8  int64 LE: the data file's write generation
//	  cover    8  int64 LE: data bytes the chunks tile, [0, cover)
//	chunk*  (one per split of the covered data, in file order)
//	  n        4  uint32 LE record count
//	  lastEnd  8  int64 LE: one past the last record's content
//	              (0 when the chunk holds no record starts)
//	  starts   n × uint32 LE, delta from the split offset
//	  vals     n × float64 LE bits
//	  — FormatKV only —
//	  keys     n × uint32 LE dictionary indices
//	  nDict    4  uint32 LE
//	  dict     nDict × (uint32 LE length + bytes)
//	footer
//	  entry*  36 bytes each: split offset 8, split length 8,
//	          payload pos 8, payload size 8, CRC-32C 4
//	  count    4  uint32 LE
//	  magic    8  "EARLCSGF"
//
// Chunks are keyed by the exact (offset, length) geometry dfs.Splits
// emits at the default split size, tiled per append segment, so the
// decoded-block cache can ask for a split and get a byte-range hit or a
// clean miss. Every payload is covered by a CRC-32C (Castagnoli,
// hardware-accelerated); any header, footer or checksum violation
// surfaces as ErrCorrupt and the reader falls back to text decode —
// a damaged sidecar can cost speed, never correctness.
//
// Values are parsed at encode time with the same colscan validation the
// text decoder uses (NaN/±Inf rejected, identical rounding), so a
// sidecar-backed block is bit-identical to the text-decoded block for
// the same split. A file with any unparseable record gets no sidecar at
// all: the text path stays the single authority on decode errors.
package colseg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/colscan"
)

// Magic strings bracket every sidecar; the trailing magic lets Extend
// find and strip the footer without trusting interior lengths.
const (
	headMagic = "EARLCSG1"
	tailMagic = "EARLCSGF"
)

// Fixed section sizes.
const (
	headerSize = 8 + 1 + 8 + 8 // magic, format, version, cover
	entrySize  = 8 + 8 + 8 + 8 + 4
	tailSize   = 4 + 8 // count, magic
)

// ErrCorrupt is the errors.Is-able sentinel wrapped by every structural
// failure — bad magic, truncated footer, CRC mismatch, inconsistent
// columns. Readers treat it as "sidecar unusable, decode the text";
// the scan cache counts and logs it, never propagates it as an answer.
var ErrCorrupt = errors.New("colseg: corrupt sidecar")

// castagnoli is the CRC-32C table shared by encode and verify; the
// Castagnoli polynomial has hardware support on both amd64 and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksum is the CRC-32C covering one chunk payload.
func checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// header is the parsed fixed-size sidecar prologue.
type header struct {
	format  colscan.Format
	version int64
	cover   int64
}

// entry is one footer index record: which split a chunk payload covers
// and where the payload lives in the sidecar.
type entry struct {
	offset int64 // split offset in the data file
	length int64 // split length in the data file
	pos    int64 // payload offset in the sidecar
	size   int64 // payload size in bytes
	crc    uint32
}

func appendHeader(dst []byte, h header) []byte {
	dst = append(dst, headMagic...)
	dst = append(dst, byte(h.format))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(h.version))
	return binary.LittleEndian.AppendUint64(dst, uint64(h.cover))
}

func parseHeader(b []byte) (header, error) {
	if len(b) < headerSize || string(b[:8]) != headMagic {
		return header{}, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	h := header{
		format:  colscan.Format(b[8]),
		version: int64(binary.LittleEndian.Uint64(b[9:])),
		cover:   int64(binary.LittleEndian.Uint64(b[17:])),
	}
	if h.format != colscan.FormatNumeric && h.format != colscan.FormatKV {
		return header{}, fmt.Errorf("%w: unknown format %d", ErrCorrupt, h.format)
	}
	if h.cover < 0 {
		return header{}, fmt.Errorf("%w: negative cover", ErrCorrupt)
	}
	return h, nil
}

func appendFooter(dst []byte, entries []entry) []byte {
	for _, e := range entries {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.offset))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.length))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.pos))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.size))
		dst = binary.LittleEndian.AppendUint32(dst, e.crc)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(entries)))
	return append(dst, tailMagic...)
}

// parseTail reads the trailing count+magic of a sidecar of sidecarSize
// bytes and returns the entry count and the footer's start offset.
func parseTail(tail []byte, sidecarSize int64) (count int, footerStart int64, err error) {
	if len(tail) != tailSize || string(tail[4:]) != tailMagic {
		return 0, 0, fmt.Errorf("%w: bad trailer", ErrCorrupt)
	}
	count = int(binary.LittleEndian.Uint32(tail))
	footerStart = sidecarSize - tailSize - int64(count)*entrySize
	if footerStart < headerSize {
		return 0, 0, fmt.Errorf("%w: footer larger than sidecar", ErrCorrupt)
	}
	return count, footerStart, nil
}

// parseEntries decodes count footer entries, validating that every
// payload lies between the header and the footer.
func parseEntries(b []byte, count int, footerStart int64) ([]entry, error) {
	if int64(len(b)) != int64(count)*entrySize {
		return nil, fmt.Errorf("%w: footer truncated", ErrCorrupt)
	}
	entries := make([]entry, count)
	for i := range entries {
		o := i * entrySize
		e := entry{
			offset: int64(binary.LittleEndian.Uint64(b[o:])),
			length: int64(binary.LittleEndian.Uint64(b[o+8:])),
			pos:    int64(binary.LittleEndian.Uint64(b[o+16:])),
			size:   int64(binary.LittleEndian.Uint64(b[o+24:])),
			crc:    binary.LittleEndian.Uint32(b[o+32:]),
		}
		if e.offset < 0 || e.length < 0 || e.size < 0 ||
			e.pos < headerSize || e.pos+e.size > footerStart {
			return nil, fmt.Errorf("%w: entry %d out of bounds", ErrCorrupt, i)
		}
		entries[i] = e
	}
	return entries, nil
}

// Info summarizes a sidecar for compaction decisions and CLI reporting.
type Info struct {
	Format  colscan.Format
	Version int64 // data file write generation the sidecar was built for
	Cover   int64 // data bytes tiled by chunks, [0, Cover)
	Chunks  int
}

// Inspect parses and fully verifies a whole in-memory sidecar: header,
// footer, and every chunk payload's CRC. Compaction uses it to decide
// whether an existing sidecar is trustworthy — any damage, including a
// payload bit flip the index alone would not see, forces a rebuild.
func Inspect(sidecar []byte) (Info, error) {
	h, err := parseHeader(sidecar)
	if err != nil {
		return Info{}, err
	}
	if len(sidecar) < headerSize+tailSize {
		return Info{}, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	count, footerStart, err := parseTail(sidecar[len(sidecar)-tailSize:], int64(len(sidecar)))
	if err != nil {
		return Info{}, err
	}
	entries, err := parseEntries(sidecar[footerStart:int64(len(sidecar))-tailSize], count, footerStart)
	if err != nil {
		return Info{}, err
	}
	for i, e := range entries {
		if crc := checksum(sidecar[e.pos : e.pos+e.size]); crc != e.crc {
			return Info{}, fmt.Errorf("%w: chunk %d checksum %08x != %08x", ErrCorrupt, i, crc, e.crc)
		}
	}
	return Info{Format: h.format, Version: h.version, Cover: h.cover, Chunks: count}, nil
}
