package colseg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/colscan"
)

// Build encodes a complete sidecar for a data file's current contents.
// segments is the file's append-segment start offsets (ascending, first
// 0 — what dfs.Segments returns) and chunkSize the split size the
// reader's geometry will use (the dfs block size): each segment is
// tiled independently, exactly like dfs.Splits, so pre-append chunks
// stay byte-stable when the sidecar is later Extended.
//
// Any record the colscan validators reject (malformed line, NaN/±Inf
// value) fails the whole Build: such files keep no sidecar, and the
// text decoder remains the single authority on decode errors.
func Build(f colscan.Format, version int64, data []byte, segments []int64, chunkSize int64) ([]byte, error) {
	if chunkSize <= 0 {
		return nil, fmt.Errorf("colseg: chunk size %d", chunkSize)
	}
	if len(segments) == 0 || segments[0] != 0 {
		return nil, fmt.Errorf("colseg: segment list must start at 0")
	}
	buf := appendHeader(nil, header{format: f, version: version, cover: int64(len(data))})
	var entries []entry
	for si, segStart := range segments {
		segEnd := int64(len(data))
		if si+1 < len(segments) {
			segEnd = segments[si+1]
		}
		if segStart > segEnd {
			return nil, fmt.Errorf("colseg: segment %d starts past its end", si)
		}
		if segStart > 0 && data[segStart-1] != '\n' {
			// dfs guarantees record-aligned appends; a violation here
			// would desynchronize chunk record ownership from Decode's.
			return nil, fmt.Errorf("colseg: segment %d not record-aligned", si)
		}
		var err error
		buf, entries, err = appendSegmentChunks(buf, entries, f, data[segStart:segEnd], segStart, chunkSize)
		if err != nil {
			return nil, err
		}
	}
	return appendFooter(buf, entries), nil
}

// Extend grows an existing sidecar with one freshly appended segment.
// The sidecar must have been built for the same write generation and
// must cover the file exactly up to segStart (dfs skips extension for
// sub-threshold appends, so cover can legitimately lag — those files
// wait for Compact). The pre-append chunk payloads are preserved
// byte-for-byte: only the header's cover field and the footer move.
func Extend(sidecar []byte, version int64, segData []byte, segStart, chunkSize int64) ([]byte, error) {
	if chunkSize <= 0 {
		return nil, fmt.Errorf("colseg: chunk size %d", chunkSize)
	}
	h, err := parseHeader(sidecar)
	if err != nil {
		return nil, err
	}
	if h.version != version {
		return nil, fmt.Errorf("colseg: sidecar at generation %d, file at %d", h.version, version)
	}
	if h.cover != segStart {
		return nil, fmt.Errorf("colseg: sidecar covers %d bytes, append starts at %d", h.cover, segStart)
	}
	if len(sidecar) < headerSize+tailSize {
		return nil, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	count, footerStart, err := parseTail(sidecar[len(sidecar)-tailSize:], int64(len(sidecar)))
	if err != nil {
		return nil, err
	}
	entries, err := parseEntries(sidecar[footerStart:int64(len(sidecar))-tailSize], count, footerStart)
	if err != nil {
		return nil, err
	}
	buf := appendHeader(make([]byte, 0, len(sidecar)+len(segData)), // chunks dominate; rough pre-size
		header{format: h.format, version: h.version, cover: segStart + int64(len(segData))})
	buf = append(buf, sidecar[headerSize:footerStart]...)
	buf, entries, err = appendSegmentChunks(buf, entries, h.format, segData, segStart, chunkSize)
	if err != nil {
		return nil, err
	}
	return appendFooter(buf, entries), nil
}

// appendSegmentChunks encodes one append segment's chunks onto buf,
// tiled at chunkSize from segBase — the same geometry dfs.Splits emits
// for that segment. segData's first byte must be a record start (dfs's
// record-aligned append invariant).
//
//earl:hotpath
func appendSegmentChunks(buf []byte, entries []entry, f colscan.Format, segData []byte, segBase, chunkSize int64) ([]byte, []entry, error) {
	// One pass over the segment finds every record's start and content
	// end (absolute file offsets). The Hadoop split rules then reduce to
	// slicing this list: a chunk owns the records starting inside it.
	var starts, ends []int64
	for pos := 0; pos < len(segData); {
		nl := bytes.IndexByte(segData[pos:], '\n')
		starts = append(starts, segBase+int64(pos))
		if nl < 0 {
			ends = append(ends, segBase+int64(len(segData)))
			pos = len(segData)
		} else {
			ends = append(ends, segBase+int64(pos+nl))
			pos += nl + 1
		}
	}
	segEnd := segBase + int64(len(segData))
	rec := 0
	for off := segBase; off < segEnd; off += chunkSize {
		end := off + chunkSize
		if end > segEnd {
			end = segEnd
		}
		lo := rec
		for rec < len(starts) && starts[rec] < end {
			rec++
		}
		pos := int64(len(buf))
		var err error
		buf, err = appendChunk(buf, f, off, segBase, segData, starts[lo:rec], ends[lo:rec])
		if err != nil {
			return nil, nil, err
		}
		payload := buf[pos:]
		entries = append(entries, entry{
			offset: off,
			length: end - off,
			pos:    pos,
			size:   int64(len(payload)),
			crc:    checksum(payload),
		})
	}
	return buf, entries, nil
}

// appendChunk encodes one split's records. starts/ends are absolute
// file offsets of the owned records; lines are sliced out of segData
// (whose first byte sits at file offset segBase) and parsed with the
// exact colscan validators, so the decoded block is bit-identical to a
// text Decode of the same split.
//
//earl:hotpath
func appendChunk(buf []byte, f colscan.Format, chunkOff, segBase int64, segData []byte, starts, ends []int64) ([]byte, error) {
	n := len(starts)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	if n == 0 {
		// Match Decode's empty block exactly: zero lastEnd.
		return binary.LittleEndian.AppendUint64(buf, 0), nil
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ends[n-1]))
	for _, s := range starts {
		d := s - chunkOff
		if d < 0 || d > math.MaxUint32 {
			return nil, fmt.Errorf("colseg: record start %d outside chunk at %d", s, chunkOff)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	var keys []uint32
	var dict [][]byte
	var intern map[string]uint32
	if f == colscan.FormatKV {
		keys = make([]uint32, 0, n)
		intern = make(map[string]uint32)
	}
	for i := 0; i < n; i++ {
		line := segData[starts[i]-segBase : ends[i]-segBase]
		var v float64
		var err error
		if f == colscan.FormatKV {
			tab := bytes.IndexByte(line, '\t')
			if tab < 0 {
				return nil, fmt.Errorf("colseg: no tab separator in record %s: %w",
					colscan.Quote(string(line)), colscan.ErrBadRecord)
			}
			ki, ok := intern[string(line[:tab])]
			if !ok {
				ki = uint32(len(dict))
				dict = append(dict, line[:tab])
				intern[string(line[:tab])] = ki
			}
			keys = append(keys, ki)
			v, err = colscan.ParseValue(line[tab+1:])
		} else {
			v, err = colscan.ParseValue(line)
		}
		if err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	if f == colscan.FormatKV {
		for _, ki := range keys {
			buf = binary.LittleEndian.AppendUint32(buf, ki)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(dict)))
		for _, k := range dict {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
			buf = append(buf, k...)
		}
	}
	return buf, nil
}

// decodeChunk loads one verified chunk payload into a colscan block:
// bounds-checked slice reads and one conversion copy per column, no
// parsing. chunkOff is the split offset the starts were delta-encoded
// against.
//
//earl:hotpath
func decodeChunk(payload []byte, f colscan.Format, chunkOff int64) (*colscan.Block, error) {
	p := payload
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: chunk shorter than its count", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) < 8 {
		return nil, fmt.Errorf("%w: chunk missing lastEnd", ErrCorrupt)
	}
	lastEnd := int64(binary.LittleEndian.Uint64(p))
	p = p[8:]
	if n == 0 {
		blk, err := colscan.NewBlock(f, nil, lastEnd, nil, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return blk, nil
	}
	need := int64(n) * 12 // starts + vals
	if f == colscan.FormatKV {
		need += int64(n)*4 + 4
	}
	if int64(len(p)) < need {
		return nil, fmt.Errorf("%w: chunk truncated (%d of %d column bytes)", ErrCorrupt, len(p), need)
	}
	starts := make([]int64, n)
	for i := range starts {
		starts[i] = chunkOff + int64(binary.LittleEndian.Uint32(p[i*4:]))
	}
	p = p[n*4:]
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
	}
	p = p[n*8:]
	var keys []uint32
	var dict []string
	if f == colscan.FormatKV {
		keys = make([]uint32, n)
		for i := range keys {
			keys[i] = binary.LittleEndian.Uint32(p[i*4:])
		}
		p = p[n*4:]
		nd := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		dict = make([]string, 0, nd)
		for i := 0; i < nd; i++ {
			if len(p) < 4 {
				return nil, fmt.Errorf("%w: dictionary truncated", ErrCorrupt)
			}
			kl := int(binary.LittleEndian.Uint32(p))
			p = p[4:]
			if kl < 0 || len(p) < kl {
				return nil, fmt.Errorf("%w: dictionary entry truncated", ErrCorrupt)
			}
			dict = append(dict, string(p[:kl]))
			p = p[kl:]
		}
	}
	blk, err := colscan.NewBlock(f, starts, lastEnd, vals, keys, dict)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return blk, nil
}
