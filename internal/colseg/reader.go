package colseg

import (
	"fmt"
	"sync"

	"repro/internal/colscan"
)

// Store is the sidecar byte store the reader pulls from; dfs.FileSystem
// satisfies it structurally (no import edge — colseg sits below dfs).
// Positioned sidecar reads are charged I/O like any other read.
type Store interface {
	// SidecarStat reports the sidecar's size for path, false if the
	// path has none.
	SidecarStat(path string) (int64, bool)
	// ReadSidecarAt fills p from the sidecar at off; n < len(p) with a
	// nil error means the sidecar ended.
	ReadSidecarAt(path string, off int64, p []byte) (int, error)
}

// Reader serves decoded blocks out of persistent sidecars: it is the
// colscan.ColumnStore the scan cache consults before falling back to
// text decode. Footer indexes are parsed once per (path, generation)
// and cached; chunk loads are then one stat, one positioned payload
// read, a CRC verify and a conversion copy. A Reader is safe for
// concurrent use.
type Reader struct {
	store Store

	mu  sync.Mutex
	idx map[string]*fileIndex
}

// readerIndexCap bounds the parsed-index cache. When it fills, the
// whole map is dropped (not a random victim: eviction must not make
// sidecar read counts depend on map iteration order — simulated I/O
// metrics are part of the determinism contract).
const readerIndexCap = 1024

// fileIndex is one sidecar's parsed footer, valid while the sidecar
// keeps the same size and write generation.
type fileIndex struct {
	sidecarSize int64
	version     int64
	format      colscan.Format
	cover       int64
	chunks      map[chunkKey]entry
}

type chunkKey struct{ offset, length int64 }

// NewReader builds a Reader over store.
func NewReader(store Store) *Reader {
	return &Reader{store: store, idx: make(map[string]*fileIndex)}
}

// LoadColumns implements colscan.ColumnStore: it returns the sidecar-
// backed block for key, ok=false when the sidecar is absent, built for
// a different generation or format, or simply does not cover the split
// (all clean misses — the cache decodes text), and an ErrCorrupt-
// wrapping error when a sidecar exists but fails structural or checksum
// verification (the cache logs it and decodes text).
func (r *Reader) LoadColumns(key colscan.BlockKey) (*colscan.Block, bool, error) {
	size, ok := r.store.SidecarStat(key.Path)
	if !ok {
		return nil, false, nil
	}
	idx, err := r.index(key.Path, key.Version, size)
	if err != nil {
		return nil, false, err
	}
	if idx.version != key.Version || idx.format != key.Format {
		// A stale or other-format sidecar is a miss, not corruption:
		// rewrites race in-flight decodes benignly (the cache refuses
		// to re-populate dead keys), and a format mismatch just means
		// the query parses the file differently than the encoder did.
		return nil, false, nil
	}
	e, ok := idx.chunks[chunkKey{key.Offset, key.Length}]
	if !ok {
		return nil, false, nil
	}
	payload := make([]byte, e.size)
	if n, err := r.store.ReadSidecarAt(key.Path, e.pos, payload); err != nil {
		return nil, false, fmt.Errorf("%w: read payload: %v", ErrCorrupt, err)
	} else if int64(n) != e.size {
		return nil, false, fmt.Errorf("%w: short payload read (%d of %d)", ErrCorrupt, n, e.size)
	}
	if crc := checksum(payload); crc != e.crc {
		return nil, false, fmt.Errorf("%w: chunk %d+%d checksum %08x != %08x",
			ErrCorrupt, key.Offset, key.Length, crc, e.crc)
	}
	blk, err := decodeChunk(payload, idx.format, key.Offset)
	if err != nil {
		return nil, false, err
	}
	return blk, true, nil
}

// index returns the parsed footer for path's sidecar, reusing the
// cached parse while the sidecar's size and generation are unchanged.
// The lock is held across the parse so concurrent cold loads of one
// file cost exactly one header+footer read — keeping simulated seek
// counts deterministic under any parallelism.
func (r *Reader) index(path string, version, size int64) (*fileIndex, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if idx, ok := r.idx[path]; ok && idx.sidecarSize == size && idx.version == version {
		return idx, nil
	}
	idx, err := r.parseIndex(path, size)
	if err != nil {
		return nil, err
	}
	if len(r.idx) >= readerIndexCap {
		r.idx = make(map[string]*fileIndex)
	}
	r.idx[path] = idx
	return idx, nil
}

// parseIndex reads and validates path's header and footer: one
// positioned read for the header+trailer probe regions and one for the
// entry table.
func (r *Reader) parseIndex(path string, size int64) (*fileIndex, error) {
	if size < headerSize+tailSize {
		return nil, fmt.Errorf("%w: sidecar smaller than header+trailer", ErrCorrupt)
	}
	head := make([]byte, headerSize)
	if n, err := r.store.ReadSidecarAt(path, 0, head); err != nil || n < headerSize {
		return nil, fmt.Errorf("%w: read header (%d bytes, %v)", ErrCorrupt, n, err)
	}
	h, err := parseHeader(head)
	if err != nil {
		return nil, err
	}
	tail := make([]byte, tailSize)
	if n, err := r.store.ReadSidecarAt(path, size-tailSize, tail); err != nil || n < tailSize {
		return nil, fmt.Errorf("%w: read trailer (%d bytes, %v)", ErrCorrupt, n, err)
	}
	count, footerStart, err := parseTail(tail, size)
	if err != nil {
		return nil, err
	}
	table := make([]byte, int64(count)*entrySize)
	if n, err := r.store.ReadSidecarAt(path, footerStart, table); err != nil || int64(n) < int64(len(table)) {
		return nil, fmt.Errorf("%w: read footer (%d bytes, %v)", ErrCorrupt, n, err)
	}
	entries, err := parseEntries(table, count, footerStart)
	if err != nil {
		return nil, err
	}
	idx := &fileIndex{
		sidecarSize: size,
		version:     h.version,
		format:      h.format,
		cover:       h.cover,
		chunks:      make(map[chunkKey]entry, len(entries)),
	}
	for _, e := range entries {
		idx.chunks[chunkKey{e.offset, e.length}] = e
	}
	return idx, nil
}
