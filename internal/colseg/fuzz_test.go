package colseg_test

import (
	"bytes"
	"testing"

	"repro/internal/colscan"
	"repro/internal/colseg"
)

// FuzzColSegRoundTrip drives the sidecar encoder/reader against the
// text decoder on arbitrary bytes:
//
//   - Build and Decode agree on the accept/reject verdict: a sidecar
//     exists exactly when every split of the file text-decodes.
//   - When it exists, every chunk the reader serves is record-for-record
//     identical (starts, value bits, keys, lengths) to a text Decode of
//     the same split.
//   - Splitting the file at any record boundary and Extending the prefix
//     sidecar with the rest reproduces the two-segment Build byte for
//     byte — the dfs append path can never drift from a fresh ingest.
func FuzzColSegRoundTrip(f *testing.F) {
	f.Add([]byte("1\n2.5\n-3e2\n"), false, uint16(4))
	f.Add([]byte("a\t1\nbb\t2\na\t3.5\n"), true, uint16(4))
	f.Add([]byte("k\tNaN\n"), true, uint16(0))
	f.Add([]byte(" 7 \n+Inf\n"), false, uint16(2))
	f.Add([]byte("1"), false, uint16(1))
	f.Add([]byte("\n\n"), false, uint16(1))
	f.Add([]byte("0x1p2\n1_0\n9007199254740993\n"), false, uint16(6))
	f.Add([]byte("g0\t1\ng1\t2\ng0\t3\ng2\t4\n"), true, uint16(300))
	f.Fuzz(func(t *testing.T, data []byte, kv bool, csRaw uint16) {
		cs := int64(csRaw)%512 + 1
		const version = 7
		format := colscan.FormatNumeric
		if kv {
			format = colscan.FormatKV
		}
		geom := chunkGeom([]int64{0}, int64(len(data)), cs)
		sc, err := colseg.Build(format, version, data, []int64{0}, cs)
		if err != nil {
			// Build rejected the data; the bad record starts inside
			// exactly one split, whose text decode must reject too.
			for _, g := range geom {
				if _, derr := colscan.Decode(byteFile(data), "/fz", int64(len(data)), g[0], g[1], format); derr != nil {
					return
				}
			}
			t.Fatalf("Build rejected data every split text-decodes: %v", err)
		}
		rd := colseg.NewReader(memStore{"/fz": sc})
		for _, g := range geom {
			key := colscan.BlockKey{Path: "/fz", Version: version, Offset: g[0], Length: g[1], Format: format}
			blk, ok, lerr := rd.LoadColumns(key)
			if lerr != nil || !ok {
				t.Fatalf("chunk [%d,+%d): ok=%v err=%v", g[0], g[1], ok, lerr)
			}
			want, derr := colscan.Decode(byteFile(data), "/fz", int64(len(data)), g[0], g[1], format)
			if derr != nil {
				t.Fatalf("sidecar built but split [%d,+%d) fails text decode: %v", g[0], g[1], derr)
			}
			if d := diffBlocks(blk, want); d != "" {
				t.Fatalf("chunk [%d,+%d): %s", g[0], g[1], d)
			}
		}

		// Extend identity: cut at the first record boundary past the
		// midpoint (the dfs record-aligned append invariant) and check
		// prefix-Build + Extend == two-segment Build, byte for byte.
		nl := bytes.IndexByte(data[len(data)/2:], '\n')
		if nl < 0 {
			return
		}
		cut := int64(nl+len(data)/2) + 1
		if cut <= 0 || cut >= int64(len(data)) {
			return
		}
		whole, err := colseg.Build(format, version, data, []int64{0, cut}, cs)
		if err != nil {
			t.Fatalf("two-segment Build failed on accepted data: %v", err)
		}
		part, err := colseg.Build(format, version, data[:cut], []int64{0}, cs)
		if err != nil {
			t.Fatalf("prefix Build failed on accepted data: %v", err)
		}
		ext, err := colseg.Extend(part, version, data[cut:], cut, cs)
		if err != nil {
			t.Fatalf("Extend failed on accepted data: %v", err)
		}
		if !bytes.Equal(ext, whole) {
			t.Fatalf("Extend diverged from two-segment Build (%d vs %d bytes)", len(ext), len(whole))
		}
	})
}
