// Package serve is earld's engine room: a multi-tenant approximate-query
// scheduler over one simulated EARL cluster. It turns the single-caller
// core API into something many concurrent clients can hit at once, with
// three mechanisms layered over core.Env:
//
//   - Admission control. Every piece of real work (a Run, a grouped run,
//     a watch creation, a refresh) must claim one of Config.MaxInFlight
//     execution slots. Callers beyond that wait in a bounded queue
//     (Config.MaxQueue) honouring their context's deadline/cancellation;
//     callers beyond the queue are rejected immediately with
//     ErrOverloaded. This keeps a burst of expensive queries from
//     oversubscribing the cluster's task slots and stretching every
//     caller's latency — the admission-control lesson the LSST-scale
//     serving designs make explicit.
//
//   - A shared-watch registry. Maintained queries — scalar,
//     multi-statistic shared-pass (QuerySpec.Stats), filtered/derived
//     (QuerySpec.Filter/Derive) and grouped (QuerySpec.GroupBy) alike —
//     are deduped by their full canonical plan identity
//     (statistics, path, filter, derive, group-by, σ, sampler, seed,
//     parallelism): the first
//     OpenWatch runs the query and keeps its maintained handle;
//     identical subsequent opens subscribe to the same underlying
//     query. After an
//     Append, the first subscriber to ask for the report pays the one
//     delta refresh (serialised per entry) and every subscriber reads
//     the same refreshed Report — K clients watching the same stream
//     cost one refresh per append, o(K·N) records, instead of K.
//
//   - A result cache for one-shot queries, invalidated by ingest. Each
//     watched path carries a generation counter bumped on Append; a
//     cached Report is returned only while its path generation is
//     current, so a cache hit can never serve data from before an
//     append.
//
// Cost attribution: the cluster's simcost.Metrics is a single shared
// sink, so per-query cost deltas (QueryResult.Cost, and the per-query
// aggregates in Metrics()) are exact only for queries that did not
// overlap another run; under concurrency, overlapping queries' counters
// bleed into each other's deltas. The aggregate snapshot is always
// exact. Per-watch refresh counts are tracked by the registry itself
// and are exact under any concurrency.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/jobs"
	"repro/internal/live"
	"repro/internal/plan"
	"repro/internal/simcost"
	"repro/internal/workload"
)

// Errors the scheduler reports to clients.
var (
	// ErrOverloaded means both the execution slots and the waiting queue
	// are full; the client should back off and retry.
	ErrOverloaded = errors.New("serve: server overloaded (queue full)")
	// ErrUnknownWatch means the watch id is not (or no longer) registered.
	ErrUnknownWatch = errors.New("serve: unknown watch id")
)

// Config shapes the scheduler.
type Config struct {
	// MaxInFlight is the number of queries actually executing on the
	// cluster at once; 4 if 0.
	MaxInFlight int
	// MaxQueue is how many admitted callers may wait for a slot beyond
	// MaxInFlight before new arrivals are rejected; 64 if 0.
	MaxQueue int
	// QueryTimeout bounds one query's total time (queueing + execution)
	// when the caller's context carries no deadline of its own; 60s if 0.
	QueryTimeout time.Duration
	// MaxWatches bounds the shared-watch registry: every entry pins a
	// live.Query's retained sample and sketch states, so abandoned
	// subscriptions must not grow server memory without limit; 256 if 0.
	MaxWatches int
	// WatchIdleTTL makes the registry cap recoverable: when OpenWatch
	// finds the registry full, watches nobody has opened or polled for
	// this long are evicted (their subscribers see ErrUnknownWatch and
	// re-open). 15m if 0.
	WatchIdleTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 60 * time.Second
	}
	if c.MaxWatches <= 0 {
		c.MaxWatches = 256
	}
	if c.WatchIdleTTL <= 0 {
		c.WatchIdleTTL = 15 * time.Minute
	}
	return c
}

// QuerySpec names one approximate query — the identity the shared-watch
// registry and the result cache key on. It IS the engine-wide canonical
// plan.Spec (path, stats, filter, derive, by, σ, sampler, seed,
// parallelism), shared verbatim with the public earl builder and
// earlctl's flags, plus the pre-plan wire spellings kept as decode
// shims. Two specs that normalize the same way are the same query and
// may share work — {"job":"p50"}, {"jobs":["p50"]} and
// {"stats":["p50"]} all key identically.
type QuerySpec struct {
	plan.Spec

	// Job and Jobs are the legacy spellings of Stats: one statistic, or
	// several computed as ONE shared-pass multi-statistic query. At most
	// one of job/jobs/stats may be set; normalize folds them into Stats.
	Job  string   `json:"job,omitempty"`
	Jobs []string `json:"jobs,omitempty"`
	// Grouped is the legacy spelling of By:"key" — the per-key variant
	// over "key\tvalue" records.
	Grouped bool `json:"grouped,omitempty"`
}

// normalize folds the legacy shims into the plan spec, then applies the
// engine-wide validation/canonicalization path (plan.Spec.Normalize) —
// the one shared with earlctl and the earl builder, so malformed
// expressions fail here with positioned client errors. The returned
// spec has empty shims: WatchInfo and /metrics always show the
// canonical form.
func (q QuerySpec) normalize() (QuerySpec, error) {
	q.Job = strings.ToLower(strings.TrimSpace(q.Job))
	set := 0
	for _, ok := range []bool{q.Job != "", len(q.Jobs) > 0, len(q.Stats) > 0} {
		if ok {
			set++
		}
	}
	if set > 1 {
		return q, errors.New("serve: give one of job, jobs or stats, not several")
	}
	switch {
	case q.Job != "":
		q.Stats = []string{q.Job}
	case len(q.Jobs) > 0:
		// Copy before handing off: the spec arrived by value but the
		// slice header aliases the caller's backing array.
		q.Stats = append([]string(nil), q.Jobs...)
	}
	q.Job, q.Jobs = "", nil
	if q.Grouped {
		if q.GroupBy != "" && q.GroupBy != "key" {
			return q, errors.New("serve: grouped conflicts with by; use one")
		}
		q.GroupBy = "key"
		q.Grouped = false
	}
	var err error
	if q.Spec, err = q.Spec.Normalize(); err != nil {
		return q, fmt.Errorf("serve: %w", err)
	}
	return q, nil
}

// jobSet resolves every statistic of a normalized spec.
func (q QuerySpec) jobSet() ([]jobs.Numeric, error) {
	jset, err := q.Spec.JobSet()
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return jset, nil
}

// key is the canonical identity string of a normalized spec — the
// engine-wide plan key. Parallelism is deliberately part of it even
// though results are bit-identical at any parallelism: sharing across
// parallelism settings would be sound for results but would make a
// subscriber's requested worker-pool size lie.
func (q QuerySpec) key() string { return q.Spec.Key() }

// QueryResult is one answered query. Multi-statistic queries fill
// Reports (one per statistic, in request order) with Report carrying
// the first statistic for single-statistic compatibility.
type QueryResult struct {
	Report  core.Report         `json:"report"`
	Reports []core.Report       `json:"reports,omitempty"`
	Groups  *core.GroupedReport `json:"groups,omitempty"`
	Cached  bool                `json:"cached"`
	Elapsed time.Duration       `json:"elapsedNs"`
	// Cost is the cluster-wide simcost delta over this query's execution
	// (zero for cache hits). Exact when no other query overlapped; see
	// the package comment for the attribution caveat.
	Cost simcost.Snapshot `json:"cost"`
}

// WatchInfo describes one registered shared watch. Sub is the caller's
// private subscription token, set only in OpenWatch's response: the
// watch ID is shared by every subscriber of the same query, so closing
// takes (ID, Sub) — making one client's DELETE (and any network-layer
// retry of it) idempotent on its own subscription instead of able to
// decrement someone else's.
type WatchInfo struct {
	ID          string    `json:"id"`
	Sub         string    `json:"sub,omitempty"`
	Spec        QuerySpec `json:"spec"`
	Subscribers int       `json:"subscribers"`
	Refreshes   int       `json:"refreshes"`
	SampleSize  int       `json:"sampleSize"`
	// Report is the scalar result (first statistic for multi-statistic
	// watches); Reports carries every statistic of a multi-statistic
	// watch and Groups the per-key results of a grouped watch.
	Report  core.Report         `json:"report"`
	Reports []core.Report       `json:"reports,omitempty"`
	Groups  *core.GroupedReport `json:"groups,omitempty"`
}

// Stats are the server's own counters (the cluster's I/O counters live
// in the simcost snapshot next to them).
type Stats struct {
	Queries         int64 `json:"queries"`         // one-shot queries answered
	CacheHits       int64 `json:"cacheHits"`       // of which served from cache
	WatchesOpened   int64 `json:"watchesOpened"`   // OpenWatch calls
	WatchesShared   int64 `json:"watchesShared"`   // of which deduped onto an existing query
	RefreshesServed int64 `json:"refreshesServed"` // delta refreshes executed by the registry
	Appends         int64 `json:"appends"`
	Rejected        int64 `json:"rejected"` // admissions refused (queue full)
	Expired         int64 `json:"expired"`  // admissions abandoned (deadline/cancel)
	InFlight        int64 `json:"inFlight"` // gauge: executing now
	Queued          int64 `json:"queued"`   // gauge: waiting for a slot
}

// MetricsReport is the GET /metrics payload.
type MetricsReport struct {
	Server  Stats            `json:"server"`
	Cluster simcost.Snapshot `json:"cluster"`
	// Scan is the decoded-block cache: hit/miss counters, retained
	// bytes against the -cache-bytes budget, and how many cold misses
	// the persistent columnar sidecars served (or failed to serve).
	Scan ScanCacheStats `json:"scanCache"`
	// Journal is the dfs commit-journal health snapshot: committed
	// records, journal bytes, active snapshot pins, and — when the
	// filesystem was built by crash recovery — what the replay found.
	Journal dfs.JournalStats `json:"journal"`
	// PerQuery aggregates cost deltas by query identity (see the package
	// comment for the overlap caveat).
	PerQuery map[string]QueryCost `json:"perQuery"`
	Watches  []WatchInfo          `json:"watches"`
}

// ScanCacheStats mirrors colscan.CacheStats with JSON names.
type ScanCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Bytes         int64 `json:"bytes"`
	MaxBytes      int64 `json:"maxBytes"`
	Blocks        int   `json:"blocks"`
	SidecarReads  int64 `json:"sidecarReads"`
	SidecarErrors int64 `json:"sidecarErrors"`
}

// QueryCost is the accumulated cost of all executions of one query key.
type QueryCost struct {
	Count int64            `json:"count"`
	Cost  simcost.Snapshot `json:"cost"`
}

// Server schedules concurrent approximate queries over one cluster.
// All methods are safe for concurrent use.
type Server struct {
	env *core.Env
	cfg Config

	slots chan struct{} // execution-slot semaphore, cap MaxInFlight

	queries, cacheHits, watchesOpened, watchesShared atomic.Int64
	refreshesServed, appends, rejected, expired      atomic.Int64
	inFlight, queued                                 atomic.Int64

	mu       sync.Mutex
	pathGen  map[string]int64 // append generation per path
	watches  map[string]*watchEntry
	byID     map[string]*watchEntry
	cache    map[string]cacheEntry
	perQuery map[string]QueryCost
	watchSeq int64
	subSeq   int64
}

// watchHandle abstracts the maintained-query flavours the registry
// serves — scalar/multi-statistic (live.Query) and grouped
// (live.GroupedQuery) — behind one refresh/report surface, so dedup,
// refresh serialisation and idle eviction are written once.
type watchHandle interface {
	Refresh() error
	Refreshes() int
	SampleSize() int
	Close()
	// fill writes the handle's current results into info (Report and,
	// as applicable, Reports/Groups).
	fill(info *WatchInfo)
}

// queryHandle adapts live.Query (scalar and multi-statistic watches).
type queryHandle struct {
	q     *live.Query
	multi bool
}

func (h queryHandle) Refresh() error {
	_, err := h.q.RefreshAll()
	return err
}
func (h queryHandle) Refreshes() int  { return h.q.Refreshes() }
func (h queryHandle) SampleSize() int { return h.q.SampleSize() }
func (h queryHandle) Close()          { h.q.Close() }
func (h queryHandle) fill(info *WatchInfo) {
	reps := h.q.Reports()
	info.Report = reps[0]
	if h.multi {
		info.Reports = reps
	}
}

// groupedHandle adapts live.GroupedQuery.
type groupedHandle struct{ q *live.GroupedQuery }

func (h groupedHandle) Refresh() error {
	_, err := h.q.Refresh()
	return err
}
func (h groupedHandle) Refreshes() int  { return h.q.Refreshes() }
func (h groupedHandle) SampleSize() int { return h.q.SampleSize() }
func (h groupedHandle) Close()          { h.q.Close() }
func (h groupedHandle) fill(info *WatchInfo) {
	rep := h.q.Report()
	info.Groups = &rep
}

// watchEntry is one shared maintained query. Creation happens outside
// the server lock; subscribers arriving meanwhile wait on ready.
type watchEntry struct {
	id    string
	key   string
	spec  QuerySpec
	ready chan struct{}
	err   error       // creation outcome, valid after ready closes
	q     watchHandle // valid after ready closes iff err == nil

	// refreshMu is a capacity-1 channel lock serialising refresh
	// decisions: unlike a sync.Mutex, a subscriber waiting behind a slow
	// refresh can still honour its context's deadline/cancellation.
	refreshMu    chan struct{}
	refreshedGen int64               // pathGen the current report reflects; guarded by refreshMu
	subIDs       map[string]struct{} // live subscription tokens, guarded by Server.mu
	lastTouch    atomic.Int64        // unix nanos of the last open/poll; idle-eviction clock
}

// touch records activity on the watch for idle-eviction purposes.
func (e *watchEntry) touch() { e.lastTouch.Store(time.Now().UnixNano()) }

// cacheEntry is a one-shot result valid while its path generation holds.
type cacheEntry struct {
	path    string // for eviction sweeps on ingest
	gen     int64
	report  core.Report
	reports []core.Report // multi-statistic results
	grouped *core.GroupedReport
}

// Bounds on the per-key maps, so a long-lived server fed ever-varying
// specs (each seed/σ/path combination is a distinct key) cannot grow
// without limit. The cache evicts arbitrarily at the cap — it is a
// recency-free correctness cache, not an LRU — and per-query cost
// aggregates beyond the cap fold into one overflow bucket.
const (
	maxCacheEntries  = 1024
	maxPerQueryKeys  = 1024
	perQueryOverflow = "(other)"
)

// New builds a server over env.
func New(env *core.Env, cfg Config) (*Server, error) {
	if env == nil || env.FS == nil || env.Engine == nil {
		return nil, errors.New("serve: incomplete Env")
	}
	cfg = cfg.withDefaults()
	return &Server{
		env:      env,
		cfg:      cfg,
		slots:    make(chan struct{}, cfg.MaxInFlight),
		pathGen:  map[string]int64{},
		watches:  map[string]*watchEntry{},
		byID:     map[string]*watchEntry{},
		cache:    map[string]cacheEntry{},
		perQuery: map[string]QueryCost{},
	}, nil
}

// Env exposes the underlying environment (the daemon's data-loading
// endpoints write through it).
func (s *Server) Env() *core.Env { return s.env }

// withDeadline applies the configured default timeout when ctx carries
// no deadline of its own.
func (s *Server) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.cfg.QueryTimeout)
}

// acquire claims one execution slot, queueing (up to MaxQueue waiters)
// until one frees or ctx ends. The returned release must be called once.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	grab := func() func() {
		s.inFlight.Add(1)
		return func() { s.inFlight.Add(-1); <-s.slots }
	}
	select {
	case s.slots <- struct{}{}:
		return grab(), nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.rejected.Add(1)
		return nil, ErrOverloaded
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return grab(), nil
	case <-ctx.Done():
		s.expired.Add(1)
		return nil, ctx.Err()
	}
}

// generation returns the current append generation of path.
func (s *Server) generation(path string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pathGen[path]
}

// bumpGeneration advances path's ingest generation and frees the cache
// entries it just invalidated (their gen can never match again).
func (s *Server) bumpGeneration(path string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pathGen[path]++
	gen := s.pathGen[path]
	for key, ce := range s.cache {
		if ce.path == path && ce.gen < gen {
			delete(s.cache, key)
		}
	}
	return gen
}

// chargeQuery folds one execution's cost delta into the per-query
// aggregates (bounded; see maxPerQueryKeys).
func (s *Server) chargeQuery(key string, cost simcost.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.perQuery[key]; !ok && len(s.perQuery) >= maxPerQueryKeys {
		key = perQueryOverflow
	}
	qc := s.perQuery[key]
	qc.Count++
	qc.Cost = qc.Cost.Add(cost)
	s.perQuery[key] = qc
}

// Query answers one one-shot query, from cache when the path has not
// been appended to since the cached execution.
func (s *Server) Query(ctx context.Context, spec QuerySpec) (QueryResult, error) {
	spec, err := spec.normalize()
	if err != nil {
		return QueryResult{}, err
	}
	ctx, cancel := s.withDeadline(ctx)
	defer cancel()
	key := spec.key()
	gen := s.generation(spec.Path)

	s.mu.Lock()
	if ce, ok := s.cache[key]; ok && ce.gen == gen {
		s.mu.Unlock()
		s.queries.Add(1)
		s.cacheHits.Add(1)
		return QueryResult{Report: ce.report, Reports: ce.reports, Groups: ce.grouped, Cached: true}, nil
	}
	s.mu.Unlock()

	release, err := s.acquire(ctx)
	if err != nil {
		return QueryResult{}, err
	}
	defer release()

	start := time.Now()
	before := s.env.Metrics.Snapshot()
	res := QueryResult{}
	// One execution path for every flavour: the plan driver. Degenerate
	// specs (no filter/derive, by "" or "key") run the historical
	// RunMulti/RunGrouped code bit-identically; single and multi-statistic
	// one-shots alike cost one shared sampling/IO pass.
	pr, rerr := core.RunPlan(s.env, spec.Spec, core.Options{})
	if rerr != nil {
		return QueryResult{}, rerr
	}
	if pr.Groups != nil {
		res.Groups = pr.Groups
	} else {
		res.Report = pr.Reports[0]
		if len(pr.Reports) > 1 {
			res.Reports = pr.Reports
		}
	}
	res.Elapsed = time.Since(start)
	res.Cost = s.env.Metrics.Snapshot().Sub(before)
	s.queries.Add(1)
	s.chargeQuery(key, res.Cost)

	// Cache under the generation observed before the run: if an Append
	// landed mid-run the stored generation is already stale and the next
	// lookup misses, so a possibly-partial view is never served as fresh.
	// Never clobber a fresher entry — a slow straggler finishing after an
	// append (and after a rerun cached the post-append result) would
	// otherwise evict it and force the next caller into a full run.
	s.mu.Lock()
	if ce, ok := s.cache[key]; !ok || ce.gen <= gen {
		if !ok && len(s.cache) >= maxCacheEntries {
			for evict := range s.cache { // arbitrary eviction at the cap
				delete(s.cache, evict)
				break
			}
		}
		s.cache[key] = cacheEntry{path: spec.Path, gen: gen, report: res.Report, reports: res.Reports, grouped: res.Groups}
	}
	s.mu.Unlock()
	return res, nil
}

// OpenWatch subscribes to the maintained query named by spec, creating
// it on first open and deduping identical subsequent opens onto the same
// underlying live.Query. The returned WatchInfo carries the watch id all
// subscribers share.
func (s *Server) OpenWatch(ctx context.Context, spec QuerySpec) (WatchInfo, bool, error) {
	spec, err := spec.normalize()
	if err != nil {
		return WatchInfo{}, false, err
	}
	ctx, cancel := s.withDeadline(ctx)
	defer cancel()
	key := spec.key()
	s.watchesOpened.Add(1)

	// Admission into the registry: join an existing identical watch, or
	// register a new entry while under the cap — evicting idle watches
	// (nobody opened or polled them within WatchIdleTTL) when full, so
	// abandoned subscriptions cannot wedge the registry permanently.
	for {
		s.mu.Lock()
		if e, ok := s.watches[key]; ok {
			sub := s.newSubLocked(e)
			s.mu.Unlock()
			e.touch()
			s.watchesShared.Add(1)
			select {
			case <-e.ready:
			case <-ctx.Done():
				s.unsubscribe(e, sub)
				return WatchInfo{}, false, ctx.Err()
			}
			if e.err != nil {
				s.unsubscribe(e, sub)
				return WatchInfo{}, false, e.err
			}
			info := s.infoOf(e)
			info.Sub = sub
			return info, true, nil
		}
		if len(s.watches) < s.cfg.MaxWatches {
			break // register below, still holding s.mu
		}
		idle := s.collectIdleLocked(time.Now().Add(-s.cfg.WatchIdleTTL).UnixNano())
		s.mu.Unlock()
		if len(idle) == 0 {
			return WatchInfo{}, false, fmt.Errorf("%w: watch registry at its %d-entry cap", ErrOverloaded, s.cfg.MaxWatches)
		}
		for _, old := range idle {
			<-old.ready
			if old.q != nil {
				old.q.Close()
			}
		}
	}
	s.watchSeq++
	e := &watchEntry{
		id:        fmt.Sprintf("w%d", s.watchSeq),
		key:       key,
		spec:      spec,
		ready:     make(chan struct{}),
		refreshMu: make(chan struct{}, 1),
		subIDs:    map[string]struct{}{},
		// The creation run syncs to the file as it stands now; starting
		// from the pre-creation generation means an append racing the
		// creation triggers one refresh, which no-ops if the run already
		// saw those bytes. (A rewrite racing the creation is equally
		// harmless: the creation run reads through a pinned snapshot, and
		// the generation bump makes the first report pay one refresh,
		// which rebuilds if the snapshot predated the rewrite.)
		refreshedGen: s.pathGen[spec.Path],
	}
	e.touch()
	sub := s.newSubLocked(e)
	s.watches[key] = e
	s.byID[e.id] = e
	s.mu.Unlock()

	// The creation runs under a server-scoped deadline, not the
	// creator's: other clients dedupe onto this entry, so one impatient
	// creator timing out in the admission queue must not poison every
	// patient subscriber waiting on ready.
	cctx, ccancel := context.WithTimeout(context.Background(), s.cfg.QueryTimeout)
	defer ccancel()
	release, err := s.acquire(cctx)
	if err != nil {
		e.err = err
		close(e.ready)
		s.dropEntry(e)
		return WatchInfo{}, false, err
	}
	before := s.env.Metrics.Snapshot()
	h, err := s.createWatch(spec)
	cost := s.env.Metrics.Snapshot().Sub(before)
	release()
	e.q, e.err = h, err
	close(e.ready)
	if err != nil {
		s.dropEntry(e)
		return WatchInfo{}, false, err
	}
	// The creation run is the dominant cost of a maintained query; charge
	// it to the key so /metrics compares watches and one-shots honestly.
	s.chargeQuery(key, cost)
	info := s.infoOf(e)
	info.Sub = sub
	return info, false, nil
}

// createWatch runs the initial query for a registry entry, returning
// the flavour-appropriate maintained handle — one plan-driven path for
// scalar, multi-statistic and grouped watches alike.
func (s *Server) createWatch(spec QuerySpec) (watchHandle, error) {
	q, gq, err := live.WatchPlan(s.env, spec.Spec, core.Options{})
	if err != nil {
		return nil, err
	}
	if gq != nil {
		return groupedHandle{gq}, nil
	}
	return queryHandle{q: q, multi: len(spec.Stats) > 1}, nil
}

// newSubLocked mints a subscription token on e. Caller holds Server.mu.
func (s *Server) newSubLocked(e *watchEntry) string {
	s.subSeq++
	sub := fmt.Sprintf("s%d", s.subSeq)
	e.subIDs[sub] = struct{}{}
	return sub
}

// infoOf renders an entry (whose ready channel has closed) for clients.
func (s *Server) infoOf(e *watchEntry) WatchInfo {
	s.mu.Lock()
	subs := len(e.subIDs)
	s.mu.Unlock()
	info := WatchInfo{
		ID:          e.id,
		Spec:        e.spec,
		Subscribers: subs,
		Refreshes:   e.q.Refreshes(),
		SampleSize:  e.q.SampleSize(),
	}
	e.q.fill(&info)
	return info
}

// dropEntry removes a (failed or closed) entry from both indexes.
func (s *Server) dropEntry(e *watchEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.watches[e.key] == e {
		delete(s.watches, e.key)
	}
	delete(s.byID, e.id)
}

// collectIdleLocked deregisters watches whose last open/poll predates
// cutoff (unix nanos) and returns them for closing outside the lock.
// Caller holds Server.mu.
func (s *Server) collectIdleLocked(cutoff int64) []*watchEntry {
	var idle []*watchEntry
	//earl:nondet-ok collected entries are only Closed, each independently; order is immaterial
	for key, e := range s.watches {
		if e.lastTouch.Load() < cutoff {
			delete(s.watches, key)
			delete(s.byID, e.id)
			idle = append(idle, e)
		}
	}
	return idle
}

// unsubscribe removes the given subscription token, closing the
// underlying query when the last subscriber leaves. A token already
// removed (a duplicate DELETE, a network retry) is a no-op — it can
// never decrement someone else's subscription.
func (s *Server) unsubscribe(e *watchEntry, sub string) {
	s.mu.Lock()
	if _, ok := e.subIDs[sub]; !ok {
		s.mu.Unlock()
		return
	}
	delete(e.subIDs, sub)
	last := len(e.subIDs) == 0
	if last {
		if s.watches[e.key] == e {
			delete(s.watches, e.key)
		}
		delete(s.byID, e.id)
	}
	s.mu.Unlock()
	if last {
		<-e.ready
		if e.q != nil {
			e.q.Close()
		}
	}
}

// CloseWatch drops the subscription identified by (id, sub); the
// underlying maintained query is closed when the last subscriber
// leaves. Unknown ids return ErrUnknownWatch; an already-dropped sub on
// a live watch is an idempotent no-op.
func (s *Server) CloseWatch(id, sub string) error {
	if sub == "" {
		return errors.New("serve: close needs the subscription token from the open response")
	}
	s.mu.Lock()
	e, ok := s.byID[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownWatch, id)
	}
	s.unsubscribe(e, sub)
	return nil
}

// WatchReport returns the watch's current report, paying the one delta
// refresh if data has been appended since the last subscriber asked.
// Refreshes are serialised per watch: concurrent subscribers after one
// append perform exactly one underlying refresh, and all of them read
// the same (bit-identical) report.
func (s *Server) WatchReport(ctx context.Context, id string) (WatchInfo, error) {
	ctx, cancel := s.withDeadline(ctx)
	defer cancel()
	s.mu.Lock()
	e, ok := s.byID[id]
	var gen int64
	if ok {
		gen = s.pathGen[e.spec.Path]
	}
	s.mu.Unlock()
	if !ok {
		return WatchInfo{}, fmt.Errorf("%w: %s", ErrUnknownWatch, id)
	}
	select {
	case <-e.ready:
	case <-ctx.Done():
		return WatchInfo{}, ctx.Err()
	}
	if e.err != nil {
		return WatchInfo{}, e.err
	}
	e.touch()
	select {
	case e.refreshMu <- struct{}{}:
	case <-ctx.Done():
		return WatchInfo{}, ctx.Err()
	}
	defer func() { <-e.refreshMu }()
	if e.refreshedGen < gen {
		release, err := s.acquire(ctx)
		if err != nil {
			return WatchInfo{}, err
		}
		beforeN := e.q.Refreshes()
		before := s.env.Metrics.Snapshot()
		err = e.q.Refresh()
		cost := s.env.Metrics.Snapshot().Sub(before)
		release()
		if err != nil {
			return WatchInfo{}, err
		}
		e.refreshedGen = gen
		// A Refresh that found nothing new (an earlier refresh already
		// consumed these bytes — gen lags the file) is a no-op inside
		// live and must stay uncounted here too, or RefreshesServed and
		// the per-query costs drift from the true simcost.Refreshes.
		if e.q.Refreshes() > beforeN {
			s.refreshesServed.Add(1)
			s.chargeQuery(e.key, cost)
		}
	}
	return s.infoOf(e), nil
}

// Append adds record-aligned data to the end of path and bumps the
// path's generation, invalidating cached results and marking every
// watch over it stale.
func (s *Server) Append(path string, data []byte) (int64, int64, error) {
	if err := s.env.FS.Append(path, data); err != nil {
		return 0, 0, err
	}
	size, err := s.env.FS.Stat(path)
	if err != nil {
		return 0, 0, err
	}
	s.appends.Add(1)
	return size, s.bumpGeneration(path), nil
}

// AppendValues appends numeric values in the fixed-width line encoding.
func (s *Server) AppendValues(path string, values []float64) (int64, int64, error) {
	return s.Append(path, workload.EncodeLinesFixed(values))
}

// Rewrite replaces path's contents wholesale and bumps the path's
// generation. Watches over the path survive: the dfs WriteFile is one
// journaled commit, every refresh reads through a pinned snapshot, and
// a refresh that observes the new write generation rebuilds the
// maintained state from scratch — so the first report a subscriber
// asks for after a rewrite is bit-identical to a fresh watch opened
// over the rewritten contents, never a blend of old and new data.
// Cached one-shot results are invalidated via the generation bump.
func (s *Server) Rewrite(path string, data []byte) (int64, error) {
	if err := s.env.FS.WriteFile(path, data); err != nil {
		return 0, err
	}
	if s.env.Scan != nil {
		// Version keying already protects correctness; dropping the old
		// contents' decoded blocks just frees the bytes promptly.
		s.env.Scan.InvalidatePath(path)
	}
	size, err := s.env.FS.Stat(path)
	if err != nil {
		return 0, err
	}
	s.bumpGeneration(path)
	return size, nil
}

// Stats returns the server's own counters.
func (s *Server) Stats() Stats {
	return Stats{
		Queries:         s.queries.Load(),
		CacheHits:       s.cacheHits.Load(),
		WatchesOpened:   s.watchesOpened.Load(),
		WatchesShared:   s.watchesShared.Load(),
		RefreshesServed: s.refreshesServed.Load(),
		Appends:         s.appends.Load(),
		Rejected:        s.rejected.Load(),
		Expired:         s.expired.Load(),
		InFlight:        s.inFlight.Load(),
		Queued:          s.queued.Load(),
	}
}

// Metrics returns the full metrics payload: server counters, the
// cluster-wide simcost aggregate, per-query cost totals, and every
// registered watch.
func (s *Server) Metrics() MetricsReport {
	rep := MetricsReport{
		Server:   s.Stats(),
		Cluster:  s.env.Metrics.Snapshot(),
		Journal:  s.env.FS.JournalStats(),
		PerQuery: map[string]QueryCost{},
	}
	if s.env.Scan != nil {
		cs := s.env.Scan.Stats()
		rep.Scan = ScanCacheStats{
			Hits: cs.Hits, Misses: cs.Misses,
			Bytes: cs.Bytes, MaxBytes: cs.MaxBytes, Blocks: cs.Blocks,
			SidecarReads: cs.SidecarReads, SidecarErrors: cs.SidecarErrors,
		}
	}
	s.mu.Lock()
	for k, v := range s.perQuery {
		rep.PerQuery[k] = v
	}
	entries := make([]*watchEntry, 0, len(s.watches))
	for _, e := range s.watches {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	for _, e := range entries {
		select {
		case <-e.ready:
			if e.err == nil {
				rep.Watches = append(rep.Watches, s.infoOf(e))
			}
		default: // still being created; skip rather than block /metrics
		}
	}
	return rep
}
