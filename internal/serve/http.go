package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/dfs"
	"repro/internal/live"
	"repro/internal/workload"
)

// Handler returns earld's HTTP JSON API over the server:
//
//	POST   /query        {stats:["mean","p95",...], path, filter?, derive?,
//	                     by?, sigma?, sampler?, seed?, parallelism?} — the
//	                     canonical plan.Spec; filter/derive/by are the σ/π/γ
//	                     query-plan expressions, several stats share one
//	                     sampling pass. {job:"mean"} / {jobs:[...]} and
//	                     {grouped:true} are accepted as legacy aliases for
//	                     stats / by:"key". Malformed expressions are 400s
//	                     with the offending column.
//	POST   /watch        same body; dedupes identical maintained queries
//	                     (scalar, multi-statistic and grouped alike) by the
//	                     spec's canonical key
//	GET    /watch/{id}   current report, refreshing once if data was appended
//	DELETE /watch/{id}?sub=TOKEN  drop the subscription minted by POST /watch
//	                     (idempotent per token; last one closes the query)
//	POST   /append       {path, values:[...]} or {path, data:"raw\nlines\n"}
//	POST   /data         {path, values:[...]} create/replace a dataset
//	GET    /metrics      server + cluster counters, per-query costs, watches
//	GET    /healthz
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /watch", s.handleOpenWatch)
	mux.HandleFunc("GET /watch/{id}", s.handleWatchReport)
	mux.HandleFunc("DELETE /watch/{id}", s.handleCloseWatch)
	mux.HandleFunc("POST /append", s.handleAppend)
	mux.HandleFunc("POST /data", s.handleData)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// openWatchResponse is the POST /watch payload: the shared WatchInfo
// plus whether this subscription joined an existing query.
type openWatchResponse struct {
	WatchInfo
	Shared bool `json:"shared"`
}

// ingestRequest is the POST /append and POST /data body. Values are
// encoded in the fixed-width line format (exactly uniform pre-map
// sampling); Data is raw newline-terminated records stored as-is.
type ingestRequest struct {
	Path   string    `json:"path"`
	Values []float64 `json:"values,omitempty"`
	Data   string    `json:"data,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var spec QuerySpec
	if !decodeBody(w, r, &spec) {
		return
	}
	res, err := s.Query(r.Context(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleOpenWatch(w http.ResponseWriter, r *http.Request) {
	var spec QuerySpec
	if !decodeBody(w, r, &spec) {
		return
	}
	info, shared, err := s.OpenWatch(r.Context(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusCreated
	if shared {
		status = http.StatusOK
	}
	writeJSON(w, status, openWatchResponse{WatchInfo: info, Shared: shared})
}

func (s *Server) handleWatchReport(w http.ResponseWriter, r *http.Request) {
	info, err := s.WatchReport(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCloseWatch(w http.ResponseWriter, r *http.Request) {
	if err := s.CloseWatch(r.PathValue("id"), r.URL.Query().Get("sub")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if !decodeBody(w, r, &req) {
		return
	}
	data, err := req.payload()
	if err != nil {
		writeError(w, err)
		return
	}
	size, gen, err := s.Append(req.Path, data)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"size": size, "generation": gen})
}

func (s *Server) handleData(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if !decodeBody(w, r, &req) {
		return
	}
	data, err := req.payload()
	if err != nil {
		writeError(w, err)
		return
	}
	size, err := s.Rewrite(req.Path, data)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"size": size})
}

func (r ingestRequest) payload() ([]byte, error) {
	if r.Path == "" {
		return nil, errors.New("serve: ingest needs a path")
	}
	switch {
	case len(r.Values) > 0 && r.Data != "":
		return nil, errors.New("serve: give values or data, not both")
	case len(r.Values) > 0:
		return workload.EncodeLinesFixed(r.Values), nil
	case r.Data != "":
		return []byte(r.Data), nil
	default:
		return nil, errors.New("serve: ingest needs values or data")
	}
}

// decodeBody parses the JSON request body into v, answering 400 itself
// on malformed input.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds is the backoff hint sent with every 503: long
// enough for a queued burst to drain a slot, short enough that clients
// honouring it re-arrive while the burst is still being served.
const retryAfterSeconds = "1"

// writeError maps scheduler and driver errors onto HTTP status codes.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrOverloaded):
		// Overload is transient by construction (the queue is full NOW);
		// tell well-behaved clients when to come back instead of letting
		// them hammer the admission queue.
		w.Header().Set("Retry-After", retryAfterSeconds)
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownWatch):
		status = http.StatusNotFound
	case errors.Is(err, live.ErrClosed):
		// The watch was closed (last unsubscribe, or a rewrite of its
		// path) while this request was in flight: gone, re-open it.
		status = http.StatusGone
	case errors.Is(err, live.ErrTruncated):
		// The watched file shrank under the handle (an out-of-band
		// rewrite): the maintained state conflicts with the data.
		status = http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	case isClientError(err):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// isClientError reports whether err describes a request the client can
// fix: this package's own validation failures (which all carry the
// "serve:" prefix), a missing file, or a record-unaligned append — the
// latter two matched by errors.Is on the dfs sentinels so wrapping
// never silently turns them into 500s.
func isClientError(err error) bool {
	if errors.Is(err, dfs.ErrNotFound) || errors.Is(err, dfs.ErrUnalignedAppend) {
		return true
	}
	return strings.HasPrefix(err.Error(), "serve:")
}
