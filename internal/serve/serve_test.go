package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/workload"
)

// newTestServer builds a server over a fresh cluster preloaded with n
// Gaussian records at path.
func newTestServer(t *testing.T, cfg Config, path string, n int) (*Server, *core.Env) {
	t.Helper()
	env, err := core.NewEnv(core.EnvConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: n, Seed: 2}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := env.FS.WriteFile(path, workload.EncodeLinesFixed(xs)); err != nil {
		t.Fatal(err)
	}
	env.Metrics.Reset()
	return s, env
}

// TestWatchDedupSharesOneQuery is the registry's core guarantee: two
// identical maintained queries share one underlying live.Query — one
// initial run, and after an append one refresh whose cost is counted
// once.
func TestWatchDedupSharesOneQuery(t *testing.T) {
	s, env := newTestServer(t, Config{}, "/t/data", 60_000)
	ctx := context.Background()
	spec := QuerySpec{Job: "mean", Spec: plan.Spec{Path: "/t/data", Sigma: 0.05, Seed: 3}}

	a, sharedA, err := s.OpenWatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sharedA {
		t.Fatal("first open reported shared")
	}
	b, sharedB, err := s.OpenWatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !sharedB {
		t.Fatal("second identical open did not dedupe")
	}
	if a.ID != b.ID {
		t.Fatalf("identical watches got different ids: %s vs %s", a.ID, b.ID)
	}
	if got := env.Metrics.Snapshot().JobStartups; got != 1 {
		t.Fatalf("two identical watches launched %d jobs, want 1", got)
	}

	delta, err := workload.NumericSpec{Dist: workload.Gaussian, N: 20_000, Seed: 4}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AppendValues("/t/data", delta); err != nil {
		t.Fatal(err)
	}

	before := env.Metrics.Snapshot()
	ra, err := s.WatchReport(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := s.WatchReport(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	cost := env.Metrics.Snapshot().Sub(before)
	if cost.Refreshes != 1 {
		t.Fatalf("two subscribers after one append cost %d refreshes, want 1", cost.Refreshes)
	}
	if ra.Report != rb.Report {
		t.Fatalf("subscribers read different reports:\n%+v\n%+v", ra.Report, rb.Report)
	}
	if ra.Refreshes != 1 {
		t.Fatalf("underlying query refreshed %d times, want 1", ra.Refreshes)
	}
}

// TestConcurrentClientsOneRefreshPerAppend is the load-generator
// acceptance test: K ≥ 8 concurrent clients issue the identical
// maintained query; per append the registry performs exactly one
// underlying refresh (simcost.Refreshes), the poll phase reads o(K·N)
// records (simcost.RecordsRead), and every client receives the
// bit-identical report — at any Parallelism.
func TestConcurrentClientsOneRefreshPerAppend(t *testing.T) {
	const (
		K        = 8
		initialN = 120_000
		batchN   = 30_000
		batches  = 3
	)
	type batchReport struct {
		Estimate   float64
		CV         float64
		SampleSize int
	}
	run := func(par int) []batchReport {
		s, env := newTestServer(t, Config{MaxInFlight: 4, MaxQueue: 4 * K}, "/t/stream", initialN)
		ctx := context.Background()
		spec := QuerySpec{Job: "mean", Spec: plan.Spec{Path: "/t/stream", Sigma: 0.05, Seed: 5, Parallelism: par}}

		ids := make([]string, K)
		var wg sync.WaitGroup
		errs := make(chan error, K)
		for c := 0; c < K; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				info, _, err := s.OpenWatch(ctx, spec)
				if err != nil {
					errs <- err
					return
				}
				ids[c] = info.ID
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		if got := env.Metrics.Snapshot().JobStartups; got != 1 {
			t.Fatalf("par=%d: %d concurrent identical watches launched %d jobs, want 1", par, K, got)
		}

		var out []batchReport
		for b := 1; b <= batches; b++ {
			delta, err := workload.NumericSpec{Dist: workload.Gaussian, N: batchN, Seed: uint64(40 + b)}.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.AppendValues("/t/stream", delta); err != nil {
				t.Fatal(err)
			}
			before := env.Metrics.Snapshot()
			reports := make([]WatchInfo, K)
			perr := make(chan error, K)
			for c := 0; c < K; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					info, err := s.WatchReport(ctx, ids[c])
					if err != nil {
						perr <- err
						return
					}
					reports[c] = info
				}(c)
			}
			wg.Wait()
			close(perr)
			for err := range perr {
				t.Fatal(err)
			}
			cost := env.Metrics.Snapshot().Sub(before)
			if cost.Refreshes != 1 {
				t.Fatalf("par=%d batch %d: %d clients cost %d refreshes, want exactly 1", par, b, K, cost.Refreshes)
			}
			// o(K·N): the poll phase may read the sampled delta once, never
			// anything proportional to K clients × N records.
			if cost.RecordsRead > int64(batchN) {
				t.Fatalf("par=%d batch %d: poll phase read %d records (> one batch of %d); dedup is not saving scans",
					par, b, cost.RecordsRead, batchN)
			}
			for c := 1; c < K; c++ {
				if reports[c].Report != reports[0].Report {
					t.Fatalf("par=%d batch %d: client %d read a different report:\n%+v\n%+v",
						par, b, c, reports[c].Report, reports[0].Report)
				}
			}
			r0 := reports[0].Report
			out = append(out, batchReport{Estimate: r0.Estimate, CV: r0.CV, SampleSize: r0.SampleSize})
		}
		return out
	}

	base := run(1)
	for _, par := range []int{4, 0} {
		got := run(par)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("parallelism %d diverged from sequential at batch %d:\n%+v\n%+v", par, i+1, got[i], base[i])
			}
		}
	}
}

// TestAdmissionControl drives the acquire path directly: with every
// execution slot held and the queue full, new arrivals are rejected
// with ErrOverloaded, and queued callers honour cancellation.
func TestAdmissionControl(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1}, "/t/adm", 4_000)

	release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// One caller fits in the queue and waits.
	queuedCtx, cancelQueued := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() {
		rel, err := s.acquire(queuedCtx)
		if err == nil {
			rel()
		}
		queuedErr <- err
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 1 })

	// The next arrival overflows the queue: immediate rejection.
	if _, err := s.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded with full queue, got %v", err)
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", s.Stats().Rejected)
	}

	// Cancelling the queued caller abandons its admission.
	cancelQueued()
	if err := <-queuedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued caller got %v, want context.Canceled", err)
	}
	if s.Stats().Expired != 1 {
		t.Fatalf("expired counter = %d, want 1", s.Stats().Expired)
	}

	// Releasing the slot lets a fresh caller straight in.
	release()
	rel, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueryCacheInvalidatedByAppend: identical one-shot queries hit the
// cache until an append bumps the path generation.
func TestQueryCacheInvalidatedByAppend(t *testing.T) {
	s, env := newTestServer(t, Config{}, "/t/cache", 50_000)
	ctx := context.Background()
	spec := QuerySpec{Job: "mean", Spec: plan.Spec{Path: "/t/cache", Seed: 6}}

	first, err := s.Query(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first query claimed a cache hit")
	}
	jobsAfterFirst := env.Metrics.Snapshot().JobStartups

	second, err := s.Query(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical repeat query missed the cache")
	}
	if second.Report != first.Report {
		t.Fatalf("cache returned a different report:\n%+v\n%+v", second.Report, first.Report)
	}
	if got := env.Metrics.Snapshot().JobStartups; got != jobsAfterFirst {
		t.Fatalf("cache hit launched cluster work (%d → %d job startups)", jobsAfterFirst, got)
	}

	delta, err := workload.NumericSpec{Dist: workload.Gaussian, N: 20_000, Seed: 7}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AppendValues("/t/cache", delta); err != nil {
		t.Fatal(err)
	}
	third, err := s.Query(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("query after append served stale cached result")
	}
	if s.Stats().CacheHits != 1 {
		t.Fatalf("cacheHits = %d, want 1", s.Stats().CacheHits)
	}
}

// TestCloseWatchLastSubscriberCloses verifies subscription counting:
// the underlying query survives until the last subscriber leaves.
func TestCloseWatchLastSubscriberCloses(t *testing.T) {
	s, _ := newTestServer(t, Config{}, "/t/close", 40_000)
	ctx := context.Background()
	spec := QuerySpec{Job: "mean", Spec: plan.Spec{Path: "/t/close", Seed: 8}}

	a, _, err := s.OpenWatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := s.OpenWatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sub == "" || b2.Sub == "" || a.Sub == b2.Sub {
		t.Fatalf("subscription tokens not distinct: %q vs %q", a.Sub, b2.Sub)
	}
	if err := s.CloseWatch(a.ID, a.Sub); err != nil {
		t.Fatal(err)
	}
	// A duplicate DELETE (network retry) must not touch b2's subscription.
	if err := s.CloseWatch(a.ID, a.Sub); err != nil {
		t.Fatal(err)
	}
	// One subscriber remains: the watch still answers.
	if _, err := s.WatchReport(ctx, a.ID); err != nil {
		t.Fatalf("watch died with a live subscriber: %v", err)
	}
	if err := s.CloseWatch(a.ID, b2.Sub); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WatchReport(ctx, a.ID); !errors.Is(err, ErrUnknownWatch) {
		t.Fatalf("closed watch still answers: %v", err)
	}
	// Reopening after full close builds a fresh query under the same spec.
	b, shared, err := s.OpenWatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if shared {
		t.Fatal("reopen after close claimed to share a closed query")
	}
	if b.ID == a.ID {
		t.Fatal("reopened watch reused the closed id")
	}
}

// TestRewriteRebuildsWatches: replacing a watched file's contents must
// NOT kill its watches. The next report pays one refresh that rebuilds
// the maintained state from scratch — bit-identical to a fresh watch
// opened over the rewritten contents — and cached one-shot results are
// invalidated.
func TestRewriteRebuildsWatches(t *testing.T) {
	s, _ := newTestServer(t, Config{}, "/t/rw", 50_000)
	ctx := context.Background()
	spec := QuerySpec{Job: "mean", Spec: plan.Spec{Path: "/t/rw", Seed: 11}}

	w, _, err := s.OpenWatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(ctx, spec); err != nil {
		t.Fatal(err)
	}

	smaller, err := workload.NumericSpec{Dist: workload.Uniform, N: 10_000, Seed: 12}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rewrite("/t/rw", workload.EncodeLinesFixed(smaller)); err != nil {
		t.Fatal(err)
	}

	// The watch survives and its next report reflects ONLY the new data.
	got, err := s.WatchReport(ctx, w.ID)
	if err != nil {
		t.Fatalf("watch died on a rewrite of its path: %v", err)
	}
	if got.ID != w.ID {
		t.Fatalf("rewrite replaced the watch id: %q vs %q", got.ID, w.ID)
	}
	// A brand-new server over the rewritten contents gives the reference
	// answer a fresh watch would.
	s2, _ := newTestServer(t, Config{}, "/t/rw", 0)
	if _, err := s2.Rewrite("/t/rw", workload.EncodeLinesFixed(smaller)); err != nil {
		t.Fatal(err)
	}
	fresh, _, err := s2.OpenWatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Report.Estimate != fresh.Report.Estimate || got.Report.SampleSize != fresh.Report.SampleSize ||
		got.Report.CILo != fresh.Report.CILo || got.Report.CIHi != fresh.Report.CIHi {
		t.Fatalf("rebuilt watch differs from a fresh one:\n got %+v\nwant %+v", got.Report, fresh.Report)
	}

	res, err := s.Query(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("query after rewrite served the pre-rewrite cached result")
	}
	// Re-opening dedupes onto the surviving (rebuilt) watch.
	w2, shared, err := s.OpenWatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !shared || w2.ID != w.ID {
		t.Fatalf("rewrite should keep the watch entry alive: %+v", w2)
	}
}

// TestWatchRegistryCapAndIdleEviction: a full registry refuses new
// distinct watches with ErrOverloaded, but idle entries (past the TTL)
// are evicted on demand so the cap is recoverable without a restart.
func TestWatchRegistryCapAndIdleEviction(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxWatches: 2, WatchIdleTTL: time.Hour}, "/t/cap", 40_000)
	ctx := context.Background()

	a, _, err := s.OpenWatch(ctx, QuerySpec{Job: "mean", Spec: plan.Spec{Path: "/t/cap", Seed: 20}})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s.OpenWatch(ctx, QuerySpec{Job: "median", Spec: plan.Spec{Path: "/t/cap", Seed: 21}})
	if err != nil {
		t.Fatal(err)
	}
	// Registry full, everything fresh: a new distinct watch is refused…
	if _, _, err := s.OpenWatch(ctx, QuerySpec{Job: "sum", Spec: plan.Spec{Path: "/t/cap", Seed: 22}}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full registry accepted a new watch: %v", err)
	}
	// …but subscribing to an existing watch still dedupes freely.
	if _, shared, err := s.OpenWatch(ctx, QuerySpec{Job: "mean", Spec: plan.Spec{Path: "/t/cap", Seed: 20}}); err != nil || !shared {
		t.Fatalf("dedup blocked by the cap: shared=%v err=%v", shared, err)
	}

	// Age one entry past the TTL; the next open evicts it and succeeds.
	s.mu.Lock()
	s.byID[b.ID].lastTouch.Store(time.Now().Add(-2 * time.Hour).UnixNano())
	s.mu.Unlock()
	c, _, err := s.OpenWatch(ctx, QuerySpec{Job: "sum", Spec: plan.Spec{Path: "/t/cap", Seed: 22}})
	if err != nil {
		t.Fatalf("idle eviction did not free a slot: %v", err)
	}
	if _, err := s.WatchReport(ctx, b.ID); !errors.Is(err, ErrUnknownWatch) {
		t.Fatalf("evicted watch still answers: %v", err)
	}
	// The fresh entries survived.
	if _, err := s.WatchReport(ctx, a.ID); err != nil {
		t.Fatalf("fresh watch evicted: %v", err)
	}
	if _, err := s.WatchReport(ctx, c.ID); err != nil {
		t.Fatal(err)
	}
}

// TestSpecValidation covers the client-error surface.
func TestSpecValidation(t *testing.T) {
	s, _ := newTestServer(t, Config{}, "/t/val", 4_000)
	ctx := context.Background()
	for _, bad := range []QuerySpec{
		{Job: "nope", Spec: plan.Spec{Path: "/t/val"}},
		{Job: "p200", Spec: plan.Spec{Path: "/t/val"}}, // out-of-range quantile is a client error too
		{Job: "qnan", Spec: plan.Spec{Path: "/t/val"}}, // ParseFloat accepts "nan"; must not reach the engine
		{Job: "pnan", Spec: plan.Spec{Path: "/t/val"}},
		{Job: "mean"},
		{Job: "mean", Spec: plan.Spec{Path: "/t/val", Sigma: -1}},
		{Job: "mean", Spec: plan.Spec{Path: "/t/val", Sampler: "mid-map"}},
		{Job: "mean", Spec: plan.Spec{Path: "/t/val", Filter: "v +"}},                   // malformed expression
		{Job: "mean", Spec: plan.Spec{Path: "/t/val", Filter: "v + 1"}},                 // filter must be boolean
		{Job: "mean", Spec: plan.Spec{Path: "/t/val", Derive: "v > 1"}},                 // derive must be numeric
		{Job: "mean", Grouped: true, Spec: plan.Spec{Path: "/t/val", GroupBy: "v - 7"}}, // grouped vs by conflict
	} {
		if _, err := s.Query(ctx, bad); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
	// Quantile forms parse (through the shared normalization path).
	for _, name := range []string{"p99", "p50", "q0.25"} {
		if _, err := (QuerySpec{Job: name, Spec: plan.Spec{Path: "/x"}}).normalize(); err != nil {
			t.Errorf("job %q rejected: %v", name, err)
		}
	}
	// Grouped one-shot works over kv data.
	kv := []byte("a\t1\na\t2\nb\t5\nb\t6\n")
	for i := 0; i < 11; i++ {
		kv = append(kv, kv...) // 4·2^11 records
	}
	if err := s.Env().FS.WriteFile("/t/kv", kv); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(ctx, QuerySpec{Job: "mean", Grouped: true, Spec: plan.Spec{Path: "/t/kv", Sigma: 0.2, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups == nil || len(res.Groups.Groups) != 2 {
		t.Fatalf("grouped query returned %+v", res.Groups)
	}
}

// TestOpenWatchConcurrentCreation: many concurrent first-opens of the
// same spec race the registry; exactly one creation run must happen.
func TestOpenWatchConcurrentCreation(t *testing.T) {
	s, env := newTestServer(t, Config{MaxInFlight: 4, MaxQueue: 64}, "/t/race", 60_000)
	ctx := context.Background()
	spec := QuerySpec{Job: "mean", Spec: plan.Spec{Path: "/t/race", Seed: 10}}

	const K = 12
	var wg sync.WaitGroup
	ids := make([]string, K)
	errs := make(chan error, K)
	for c := 0; c < K; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			info, _, err := s.OpenWatch(ctx, spec)
			if err != nil {
				errs <- fmt.Errorf("open[%d]: %w", c, err)
				return
			}
			ids[c] = info.ID
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for c := 1; c < K; c++ {
		if ids[c] != ids[0] {
			t.Fatalf("racing opens produced distinct watches: %v", ids)
		}
	}
	if got := env.Metrics.Snapshot().JobStartups; got != 1 {
		t.Fatalf("%d racing opens launched %d initial runs, want 1", K, got)
	}
	if s.Stats().WatchesShared != K-1 {
		t.Fatalf("watchesShared = %d, want %d", s.Stats().WatchesShared, K-1)
	}
}

// TestGroupedWatchDedupBitIdentical is the grouped-watch acceptance
// test: K=8 subscribers open the identical grouped maintained query
// through the shared registry — one creation run; per append exactly one
// underlying delta refresh (simcost.Refreshes); and every subscriber
// reads the bit-identical grouped report, including a group that first
// appears in appended data.
func TestGroupedWatchDedupBitIdentical(t *testing.T) {
	const K = 8
	kvBatch := func(keys []string, per int, seed uint64, shift float64) []byte {
		xs, err := workload.NumericSpec{Dist: workload.Uniform, N: per * len(keys), Seed: seed}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		i := 0
		for _, k := range keys {
			for j := 0; j < per; j++ {
				fmt.Fprintf(&sb, "%s\t%012.6f\n", k, xs[i]+shift)
				i++
			}
		}
		return []byte(sb.String())
	}

	env, err := core.NewEnv(core.EnvConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(env, Config{MaxInFlight: 4, MaxQueue: 4 * K})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.FS.WriteFile("/t/kv", kvBatch([]string{"a", "b"}, 25_000, 2, 0)); err != nil {
		t.Fatal(err)
	}
	env.Metrics.Reset()
	ctx := context.Background()
	spec := QuerySpec{Job: "mean", Grouped: true, Spec: plan.Spec{Path: "/t/kv", Sigma: 0.08, Seed: 3}}

	ids := make([]string, K)
	var wg sync.WaitGroup
	errs := make(chan error, K)
	for c := 0; c < K; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			info, _, err := s.OpenWatch(ctx, spec)
			if err != nil {
				errs <- err
				return
			}
			ids[c] = info.ID
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for c := 1; c < K; c++ {
		if ids[c] != ids[0] {
			t.Fatalf("identical grouped watches got distinct ids: %v", ids)
		}
	}
	if got := env.Metrics.Snapshot().JobStartups; got != 1 {
		t.Fatalf("%d identical grouped watches launched %d initial runs, want 1", K, got)
	}

	// Two append cycles: more of "b", then a brand-new key "c".
	for b, batch := range [][]byte{
		kvBatch([]string{"b"}, 20_000, 4, 50),
		kvBatch([]string{"c"}, 20_000, 5, 200),
	} {
		if _, _, err := s.Append("/t/kv", batch); err != nil {
			t.Fatal(err)
		}
		before := env.Metrics.Snapshot()
		reports := make([]WatchInfo, K)
		perr := make(chan error, K)
		for c := 0; c < K; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				info, err := s.WatchReport(ctx, ids[c])
				if err != nil {
					perr <- err
					return
				}
				reports[c] = info
			}(c)
		}
		wg.Wait()
		close(perr)
		for err := range perr {
			t.Fatal(err)
		}
		cost := env.Metrics.Snapshot().Sub(before)
		if cost.Refreshes != 1 {
			t.Fatalf("append %d: %d grouped subscribers cost %d refreshes, want exactly 1", b, K, cost.Refreshes)
		}
		if reports[0].Groups == nil {
			t.Fatalf("append %d: grouped watch info carries no Groups: %+v", b, reports[0])
		}
		for c := 1; c < K; c++ {
			if !reflect.DeepEqual(reports[c].Groups, reports[0].Groups) {
				t.Fatalf("append %d: subscriber %d read a different grouped report:\n%+v\n%+v",
					b, c, reports[c].Groups, reports[0].Groups)
			}
		}
		if b == 1 {
			if _, ok := reports[0].Groups.Groups["c"]; !ok {
				t.Fatalf("group first appearing in appended data missing: %v", reports[0].Groups.SortedGroupKeys())
			}
		}
	}
}

// TestMultiStatQueryAndWatch covers the multi-statistic spec surface: a
// jobs list answers one report per statistic from one shared pass, hits
// the cache on repeat, and a one-element jobs list shares identity with
// the job spelling (same watch, same cache key).
func TestMultiStatQueryAndWatch(t *testing.T) {
	s, _ := newTestServer(t, Config{}, "/t/multi", 60_000)
	ctx := context.Background()

	res, err := s.Query(ctx, QuerySpec{Jobs: []string{"mean", "p95", "count"}, Spec: plan.Spec{Path: "/t/multi", Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("multi-stat query returned %d reports, want 3", len(res.Reports))
	}
	if res.Report != res.Reports[0] {
		t.Fatalf("Report is not the first statistic: %+v vs %+v", res.Report, res.Reports[0])
	}
	if res.Reports[1].Job != "quantile-0.95" || res.Reports[2].Job != "count" {
		t.Fatalf("reports out of order: %s, %s", res.Reports[1].Job, res.Reports[2].Job)
	}
	again, err := s.Query(ctx, QuerySpec{Jobs: []string{"mean", "p95", "count"}, Spec: plan.Spec{Path: "/t/multi", Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || !reflect.DeepEqual(again.Reports, res.Reports) {
		t.Fatalf("identical multi-stat repeat missed the cache: cached=%v", again.Cached)
	}

	// jobs:["mean"] and job:"mean" are the same query identity.
	a, _, err := s.OpenWatch(ctx, QuerySpec{Job: "mean", Spec: plan.Spec{Path: "/t/multi", Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	b, shared, err := s.OpenWatch(ctx, QuerySpec{Jobs: []string{"mean"}, Spec: plan.Spec{Path: "/t/multi", Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !shared || a.ID != b.ID {
		t.Fatalf("one-element jobs list did not dedupe onto the job spelling: %v vs %v (shared=%v)", a.ID, b.ID, shared)
	}

	// A multi-stat watch refreshes every statistic with one delta scan.
	w, _, err := s.OpenWatch(ctx, QuerySpec{Jobs: []string{"mean", "p95"}, Spec: plan.Spec{Path: "/t/multi", Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := workload.NumericSpec{Dist: workload.Gaussian, N: 20_000, Seed: 7}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AppendValues("/t/multi", delta); err != nil {
		t.Fatal(err)
	}
	info, err := s.WatchReport(ctx, w.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Reports) != 2 {
		t.Fatalf("multi-stat watch info carries %d reports, want 2", len(info.Reports))
	}
	// Both specs disagree (job vs jobs) — ensure they did not collide.
	if info.ID == a.ID {
		t.Fatalf("distinct job sets shared a watch id")
	}

	// Validation: mixed spellings, grouped multi, and duplicates —
	// including two spellings of the same quantile — are client errors.
	for _, bad := range []QuerySpec{
		{Job: "mean", Jobs: []string{"p95"}, Spec: plan.Spec{Path: "/t/multi"}},
		{Jobs: []string{"mean", "p95"}, Grouped: true, Spec: plan.Spec{Path: "/t/multi"}},
		{Jobs: []string{"mean", "nope"}, Spec: plan.Spec{Path: "/t/multi"}},
		{Jobs: []string{"mean", "mean"}, Spec: plan.Spec{Path: "/t/multi"}},
		{Jobs: []string{"p99.9", "q0.999"}, Spec: plan.Spec{Path: "/t/multi"}},
	} {
		if _, err := s.Query(ctx, bad); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}

	// normalize must not rewrite the caller's Jobs slice in place.
	names := []string{"MEAN", "P95"}
	if _, err := s.Query(ctx, QuerySpec{Jobs: names, Spec: plan.Spec{Path: "/t/multi", Seed: 8}}); err != nil {
		t.Fatal(err)
	}
	if names[0] != "MEAN" || names[1] != "P95" {
		t.Fatalf("normalize mutated the caller's jobs slice: %v", names)
	}
}

// TestSpecAliasKeysIdentical pins the back-compat contract: the legacy
// job / jobs / grouped spellings and the canonical stats / by fields
// normalize to the SAME cache and dedup key, so old and new clients
// share watches and cache entries.
func TestSpecAliasKeysIdentical(t *testing.T) {
	key := func(q QuerySpec) string {
		t.Helper()
		n, err := q.normalize()
		if err != nil {
			t.Fatalf("normalize %+v: %v", q, err)
		}
		return n.key()
	}
	base := plan.Spec{Path: "/t/data", Sigma: 0.05, Seed: 3}
	if a, b := key(QuerySpec{Job: "p50", Spec: base}), key(QuerySpec{Jobs: []string{"p50"}, Spec: base}); a != b {
		t.Fatalf("job vs jobs keys differ:\n%s\n%s", a, b)
	}
	stats := base
	stats.Stats = []string{"p50"}
	if a, b := key(QuerySpec{Job: "p50", Spec: base}), key(QuerySpec{Spec: stats}); a != b {
		t.Fatalf("job vs stats keys differ:\n%s\n%s", a, b)
	}
	// Two spellings of the same quantile canonicalize together.
	q05 := base
	q05.Stats = []string{"q0.5"}
	if a, b := key(QuerySpec{Job: "p50", Spec: base}), key(QuerySpec{Spec: q05}); a != b {
		t.Fatalf("p50 vs q0.5 keys differ:\n%s\n%s", a, b)
	}
	// grouped:true is by:"key".
	byKey := base
	byKey.GroupBy = "key"
	if a, b := key(QuerySpec{Job: "mean", Grouped: true, Spec: base}), key(QuerySpec{Job: "mean", Spec: byKey}); a != b {
		t.Fatalf("grouped vs by:key keys differ:\n%s\n%s", a, b)
	}
	// Expression whitespace canonicalizes away.
	f1, f2 := base, base
	f1.Filter, f2.Filter = "v>50&&v<90", "v > 50  &&  (v < 90)"
	if a, b := key(QuerySpec{Job: "mean", Spec: f1}), key(QuerySpec{Job: "mean", Spec: f2}); a != b {
		t.Fatalf("equivalent filter spellings key differently:\n%s\n%s", a, b)
	}
}

// TestPlanQueryOverServe runs σ/π/γ specs through the server surface: a
// pushed-down filter answers over the subpopulation (and caches), and a
// grouped-by-expression watch dedupes across equivalent spellings.
func TestPlanQueryOverServe(t *testing.T) {
	env, err := core.NewEnv(core.EnvConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	xs, err := workload.NumericSpec{Dist: workload.Uniform, N: 60_000, Seed: 2}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := env.FS.WriteFile("/t/u", workload.EncodeLinesFixed(xs)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	spec := QuerySpec{Spec: plan.Spec{Path: "/t/u", Stats: []string{"mean"}, Filter: "v > 50", Seed: 3}}
	res, err := s.Query(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform[0,100) above 50 averages near 75; the unfiltered mean is 50.
	if res.Report.Estimate < 65 || res.Report.Estimate > 85 {
		t.Fatalf("filtered mean %.3f does not look like the v>50 subpopulation", res.Report.Estimate)
	}
	again, err := s.Query(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Report != res.Report {
		t.Fatalf("identical plan query missed the cache (cached=%v)", again.Cached)
	}

	a, _, err := s.OpenWatch(ctx, QuerySpec{Spec: plan.Spec{Path: "/t/u", Stats: []string{"mean"}, GroupBy: "floor(v/25)", Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	b, shared, err := s.OpenWatch(ctx, QuerySpec{Spec: plan.Spec{Path: "/t/u", Stats: []string{"mean"}, GroupBy: "floor(v / 25)", Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !shared || a.ID != b.ID {
		t.Fatalf("equivalent grouped plan spellings did not dedupe: %v vs %v (shared=%v)", a.ID, b.ID, shared)
	}
	if a.Groups == nil || len(a.Groups.Groups) != 4 {
		t.Fatalf("grouped plan watch returned %+v", a.Groups)
	}
}

// TestMetricsExposeScanCache pins the observability satellite: GET
// /metrics carries the decoded-block cache counters, including how many
// cold misses the persistent columnar sidecars served, and they move
// when queries run.
func TestMetricsExposeScanCache(t *testing.T) {
	s, _ := newTestServer(t, Config{}, "/t/scan", 60_000)
	rep := s.Metrics()
	if rep.Scan.MaxBytes <= 0 {
		t.Fatalf("scanCache.maxBytes = %d, want the configured budget", rep.Scan.MaxBytes)
	}
	spec := QuerySpec{Job: "mean", Spec: plan.Spec{Path: "/t/scan", Seed: 11, Sampler: "post-map"}}
	if _, err := s.Query(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	rep = s.Metrics()
	if rep.Scan.Misses == 0 {
		t.Fatalf("scanCache counted no misses after a cold query: %+v", rep.Scan)
	}
	if rep.Scan.SidecarReads == 0 {
		t.Fatalf("cold post-map query read nothing from the sidecar: %+v", rep.Scan)
	}
	if rep.Scan.SidecarErrors != 0 {
		t.Fatalf("clean data produced %d sidecar errors", rep.Scan.SidecarErrors)
	}
}

// TestConcurrentRewriteNeverBlends hammers WatchReport while a rewrite
// of the watched path lands on another goroutine. Every report must be
// bit-identical to the pre-rewrite answer OR to a fresh watch over the
// rewritten contents — never a blend of old and new records. Run under
// -race this also pins the snapshot/refresh locking. This is the
// isolation contract that replaced the old "rewrite retires watches"
// carve-out.
func TestConcurrentRewriteNeverBlends(t *testing.T) {
	s, _ := newTestServer(t, Config{}, "/t/blend", 40_000)
	ctx := context.Background()
	spec := QuerySpec{Job: "mean", Spec: plan.Spec{Path: "/t/blend", Seed: 17}}

	w, _, err := s.OpenWatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	pre := w.Report

	// Reference post-rewrite answer: a fresh watch on a second cluster
	// holding only the rewritten contents.
	newData, err := workload.NumericSpec{Dist: workload.Uniform, N: 15_000, Seed: 18}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	encoded := workload.EncodeLinesFixed(newData)
	s2, _ := newTestServer(t, Config{}, "/t/blend", 0)
	if _, err := s2.Rewrite("/t/blend", encoded); err != nil {
		t.Fatal(err)
	}
	ref, _, err := s2.OpenWatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	post := ref.Report

	sameReport := func(a, b core.Report) bool {
		return a.Estimate == b.Estimate && a.CILo == b.CILo &&
			a.CIHi == b.CIHi && a.SampleSize == b.SampleSize
	}
	if sameReport(pre, post) {
		t.Fatal("pre- and post-rewrite references coincide; test is vacuous")
	}

	rewriteDone := make(chan struct{})
	go func() {
		defer close(rewriteDone)
		if _, err := s.Rewrite("/t/blend", encoded); err != nil {
			t.Error(err)
		}
	}()

	sawPost := false
	for i := 0; ; i++ {
		info, err := s.WatchReport(ctx, w.ID)
		if err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		switch {
		case sameReport(info.Report, post):
			sawPost = true
		case sameReport(info.Report, pre):
			if sawPost {
				t.Fatalf("report %d regressed to the pre-rewrite answer", i)
			}
		default:
			t.Fatalf("report %d is a blend: %+v (pre %+v, post %+v)",
				i, info.Report, pre, post)
		}
		select {
		case <-rewriteDone:
			if sawPost {
				return
			}
		default:
		}
	}
}
