package sampling

import (
	"math/rand/v2"

	"repro/internal/colscan"
)

// PostMapCols is the post-map sampler (Algorithm 1) over decoded
// columnar blocks: instead of pooling one parsed string pair per record
// (the PostMap shape — two allocations and ~50 bytes of header per
// record), the map-side scan decodes each split into one shared block
// and the pool is a flat slice of 8-byte (block, record) references.
// Draws are the same incremental Fisher–Yates shuffle as PostMap —
// without replacement, ErrExhausted when dry — and deliver parsed
// columns straight to the engine's batch route.
type PostMapCols struct {
	blocks []*colscan.Block
	refs   []colRef
	drawn  int
	rng    *rand.Rand
}

type colRef struct {
	blk int32
	rec int32
}

// NewPostMapCols builds an empty columnar pool with its own seeded rng
// stream (the same stream constant as PostMap: a fixed seed draws the
// same record permutation on either representation of the pool).
func NewPostMapCols(seed uint64) *PostMapCols {
	return &PostMapCols{rng: rand.New(rand.NewPCG(seed, 0x3c6ef372fe94f82b))}
}

// AddBlock pools every record of one decoded split. Blocks are added
// in split order before the first draw, mirroring PostMap's scan-order
// Add calls.
func (s *PostMapCols) AddBlock(b *colscan.Block) {
	bi := int32(len(s.blocks))
	s.blocks = append(s.blocks, b)
	for r := 0; r < b.NumRecords(); r++ {
		s.refs = append(s.refs, colRef{blk: bi, rec: int32(r)})
	}
}

// AddBlockKept pools only the given records (ascending indices into b)
// of one decoded split — the predicate-pushdown fill: a filtering run
// pools the σ-surviving records of each cached block, so the pool IS
// the filtered subpopulation and a fixed seed draws the same record
// permutation as a pool built from a physically pre-filtered file.
func (s *PostMapCols) AddBlockKept(b *colscan.Block, kept []int32) {
	bi := int32(len(s.blocks))
	s.blocks = append(s.blocks, b)
	for _, r := range kept {
		s.refs = append(s.refs, colRef{blk: bi, rec: r})
	}
}

// Total returns the number of records pooled.
func (s *PostMapCols) Total() int { return len(s.refs) }

// Remaining returns how many pooled records have not been drawn yet.
func (s *PostMapCols) Remaining() int { return len(s.refs) - s.drawn }

// DrawCols appends n records drawn uniformly without replacement to
// out. It returns the number appended; fewer than n only with
// ErrExhausted.
func (s *PostMapCols) DrawCols(n int, out *colscan.Cols) (int, error) {
	got := 0
	for got < n {
		if s.drawn >= len(s.refs) {
			return got, ErrExhausted
		}
		// Incremental Fisher–Yates: the prefix [0, drawn) is the sample
		// so far; one uniform pick from the suffix extends it.
		j := s.drawn + s.rng.IntN(len(s.refs)-s.drawn)
		s.refs[s.drawn], s.refs[j] = s.refs[j], s.refs[s.drawn]
		ref := s.refs[s.drawn]
		s.blocks[ref.blk].AppendCols(out, int(ref.rec))
		s.drawn++
		got++
	}
	return got, nil
}

// Reset forgets draw state, restarting the without-replacement stream
// over the same pool.
func (s *PostMapCols) Reset() {
	s.drawn = 0
}
