package sampling

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/dfs"
	"repro/internal/simcost"
	"repro/internal/workload"
)

// fixtureFS writes n fixed-width numeric records and returns the fs.
func fixtureFS(t testing.TB, n int, clustered bool) (*dfs.FileSystem, []float64, *simcost.Metrics) {
	t.Helper()
	var m simcost.Metrics
	fsys := dfs.New(dfs.Config{BlockSize: 1 << 12, Replication: 2, DataNodes: 4, Metrics: &m, Seed: 9})
	xs, err := workload.NumericSpec{Dist: workload.Uniform, N: n, Seed: 17, Clustered: clustered}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Fixed-width encoding makes byte-position sampling exactly uniform.
	buf := make([]byte, 0, n*11)
	for _, x := range xs {
		buf = append(buf, fmt.Sprintf("%09.4f\n", x)...)
	}
	if err := fsys.WriteFile("/data", buf); err != nil {
		t.Fatal(err)
	}
	return fsys, xs, &m
}

func TestPreMapDistinctAndValid(t *testing.T) {
	fsys, xs, _ := fixtureFS(t, 2000, false)
	s, err := NewPreMap(fsys, "/data", 1<<10, 5)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := s.Sample(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 300 || s.Taken() != 300 {
		t.Fatalf("sampled %d (taken %d), want 300", len(recs), s.Taken())
	}
	seen := map[int64]bool{}
	valid := map[string]bool{}
	for _, x := range xs {
		valid[fmt.Sprintf("%09.4f", x)] = true
	}
	for _, r := range recs {
		if seen[r.Offset] {
			t.Fatalf("duplicate offset %d", r.Offset)
		}
		seen[r.Offset] = true
		if !valid[r.Line] {
			t.Fatalf("sampled line %q not in dataset", r.Line)
		}
		if r.Offset%10 != 0 {
			t.Fatalf("offset %d not a record boundary", r.Offset)
		}
	}
}

func TestPreMapExpansionStaysDistinct(t *testing.T) {
	fsys, _, _ := fixtureFS(t, 500, false)
	s, err := NewPreMap(fsys, "/data", 1<<10, 6)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for round := 0; round < 5; round++ {
		recs, err := s.Sample(80)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, r := range recs {
			if seen[r.Offset] {
				t.Fatalf("round %d re-sampled offset %d", round, r.Offset)
			}
			seen[r.Offset] = true
		}
	}
	if s.Taken() != 400 {
		t.Fatalf("taken = %d, want 400", s.Taken())
	}
}

func TestPreMapExhaustion(t *testing.T) {
	fsys, _, _ := fixtureFS(t, 50, false)
	s, _ := NewPreMap(fsys, "/data", 1<<10, 7)
	recs, err := s.Sample(200)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if len(recs) != 50 {
		t.Fatalf("got %d records before exhaustion, want 50", len(recs))
	}
}

func TestPreMapUniformMean(t *testing.T) {
	// The sampled mean over fixed-width records must estimate the true
	// mean well — the uniformity property everything else rests on.
	fsys, xs, _ := fixtureFS(t, 20000, false)
	var truth float64
	for _, x := range xs {
		truth += x
	}
	truth /= float64(len(xs))
	s, _ := NewPreMap(fsys, "/data", 1<<12, 8)
	recs, err := s.Sample(4000)
	if err != nil {
		t.Fatal(err)
	}
	var est float64
	for _, r := range recs {
		v, err := strconv.ParseFloat(r.Line, 64)
		if err != nil {
			t.Fatal(err)
		}
		est += v
	}
	est /= float64(len(recs))
	if rel := math.Abs(est-truth) / truth; rel > 0.03 {
		t.Fatalf("sampled mean %v vs truth %v (rel err %v)", est, truth, rel)
	}
}

func TestPreMapEstimatesTotals(t *testing.T) {
	fsys, _, _ := fixtureFS(t, 1000, false)
	s, _ := NewPreMap(fsys, "/data", 1<<10, 9)
	if _, err := s.Sample(100); err != nil {
		t.Fatal(err)
	}
	total := s.EstimatedTotalRecords()
	if total < 990 || total > 1010 {
		t.Fatalf("estimated total = %d, want ≈1000", total)
	}
	p := s.EstimatedFraction()
	if p < 0.09 || p > 0.11 {
		t.Fatalf("estimated fraction = %v, want ≈0.1", p)
	}
}

func TestPreMapReadsFarLessThanFile(t *testing.T) {
	fsys, _, m := fixtureFS(t, 50000, false)
	size, _ := fsys.Stat("/data")
	before := m.Snapshot()
	s, _ := NewPreMap(fsys, "/data", 1<<12, 10)
	if _, err := s.Sample(100); err != nil {
		t.Fatal(err)
	}
	read := m.Snapshot().Sub(before).BytesRead
	if read >= size/2 {
		t.Fatalf("pre-map read %d of %d bytes — not sub-scan", read, size)
	}
}

func TestPreMapReset(t *testing.T) {
	fsys, _, _ := fixtureFS(t, 100, false)
	s, _ := NewPreMap(fsys, "/data", 1<<10, 11)
	if _, err := s.Sample(50); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Taken() != 0 {
		t.Fatal("reset did not clear state")
	}
	if _, err := s.Sample(100); err != nil {
		t.Fatalf("post-reset sample: %v", err)
	}
}

func TestPreMapEmptyFile(t *testing.T) {
	fsys := dfs.New(dfs.Config{BlockSize: 64, Replication: 1, DataNodes: 1})
	fsys.WriteFile("/empty", nil)
	s, err := NewPreMap(fsys, "/empty", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if recs, err := s.Sample(0); err != nil || len(recs) != 0 {
		t.Fatalf("zero draw = %v, %v", recs, err)
	}
}

func TestPostMapDrawWithoutReplacement(t *testing.T) {
	s := NewPostMap(3)
	for i := 0; i < 100; i++ {
		s.Add(fmt.Sprintf("k%d", i), strconv.Itoa(i))
	}
	if s.Total() != 100 {
		t.Fatalf("total = %d", s.Total())
	}
	seen := map[string]bool{}
	for round := 0; round < 4; round++ {
		recs, err := s.Draw(25)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if seen[r.Key] {
				t.Fatalf("key %s drawn twice", r.Key)
			}
			seen[r.Key] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("drew %d distinct, want 100", len(seen))
	}
	if _, err := s.Draw(1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if s.Fraction() != 1.0 {
		t.Fatalf("fraction = %v", s.Fraction())
	}
	s.Reset()
	if s.Remaining() != 100 {
		t.Fatal("reset did not restore pool")
	}
}

func TestPostMapUniformity(t *testing.T) {
	// Draw 10% many times; each record's inclusion frequency should be
	// close to 10%.
	const n, k, trials = 200, 20, 3000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		s := NewPostMap(uint64(trial))
		for i := 0; i < n; i++ {
			s.Add(strconv.Itoa(i), "")
		}
		recs, err := s.Draw(k)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			i, _ := strconv.Atoi(r.Key)
			counts[i]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("record %d drawn %d times, want ≈%v", i, c, want)
		}
	}
}

func TestPostMapNegativeDraw(t *testing.T) {
	s := NewPostMap(1)
	s.Add("k", "v")
	recs, err := s.Draw(-5)
	if err != nil || len(recs) != 0 {
		t.Fatalf("negative draw = %v, %v", recs, err)
	}
}

func TestReservoirExactlyK(t *testing.T) {
	r, err := NewReservoir(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		r.Add(strconv.Itoa(i))
	}
	if got := r.Sample(); len(got) != 10 {
		t.Fatalf("sample size = %d", len(got))
	}
	if r.Seen() != 1000 {
		t.Fatalf("seen = %d", r.Seen())
	}
	if _, err := NewReservoir(0, 1); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r, _ := NewReservoir(10, 4)
	r.Add("only")
	if got := r.Sample(); len(got) != 1 || got[0] != "only" {
		t.Fatalf("sample = %v", got)
	}
}

func TestReservoirUniformity(t *testing.T) {
	const n, k, trials = 50, 5, 4000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r, _ := NewReservoir(k, uint64(trial))
		for i := 0; i < n; i++ {
			r.Add(strconv.Itoa(i))
		}
		for _, rec := range r.Sample() {
			i, _ := strconv.Atoi(rec)
			counts[i]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("record %d kept %d times, want ≈%v", i, c, want)
		}
	}
}

func TestBlockSampleBiasOnClusteredLayout(t *testing.T) {
	// On a clustered (sorted) layout, one block is a terrible estimate of
	// the mean; pre-map stays accurate. This is the paper's §3.3 argument
	// against naive block sampling.
	fsys, xs, _ := fixtureFS(t, 20000, true)
	var truth float64
	for _, x := range xs {
		truth += x
	}
	truth /= float64(len(xs))

	lines, err := BlockSample(fsys, "/data", 1<<12, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var blockMean float64
	for _, l := range lines {
		v, _ := strconv.ParseFloat(l, 64)
		blockMean += v
	}
	blockMean /= float64(len(lines))
	blockErr := math.Abs(blockMean-truth) / truth

	s, _ := NewPreMap(fsys, "/data", 1<<12, 3)
	recs, err := s.Sample(len(lines))
	if err != nil {
		t.Fatal(err)
	}
	var pmMean float64
	for _, r := range recs {
		v, _ := strconv.ParseFloat(r.Line, 64)
		pmMean += v
	}
	pmMean /= float64(len(recs))
	pmErr := math.Abs(pmMean-truth) / truth

	if blockErr < 5*pmErr {
		t.Fatalf("expected block sampling to be far worse on clustered data: block=%v premap=%v", blockErr, pmErr)
	}
}

func TestBlockSampleAllBlocks(t *testing.T) {
	fsys, xs, _ := fixtureFS(t, 100, false)
	lines, err := BlockSample(fsys, "/data", 1<<10, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(xs) {
		t.Fatalf("requesting more blocks than exist should read all: %d vs %d", len(lines), len(xs))
	}
}

func TestTwoFileSamplerSeekSavings(t *testing.T) {
	fsys, _, m := fixtureFS(t, 5000, false)
	tf, err := NewTwoFile(fsys, "/data", 1<<12, 6, 2) // ~half the splits cached
	if err != nil {
		t.Fatal(err)
	}
	if tf.MemFraction() <= 0.3 {
		t.Fatalf("mem fraction = %v, want sizeable", tf.MemFraction())
	}
	before := m.Snapshot().DiskSeeks
	lines, err := tf.Sample(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 500 {
		t.Fatalf("sampled %d", len(lines))
	}
	seeks := m.Snapshot().DiskSeeks - before
	// Cached fraction should have eliminated a matching share of seeks.
	if float64(seeks) > 500*(1-tf.MemFraction())*1.5 {
		t.Fatalf("seeks = %d with mem fraction %v", seeks, tf.MemFraction())
	}
}

func TestPreMapPropertyOffsetsAreRecordStarts(t *testing.T) {
	f := func(seed uint64) bool {
		fsys := dfs.New(dfs.Config{BlockSize: 256, Replication: 1, DataNodes: 2, Seed: seed})
		var buf []byte
		n := 50 + int(seed%100)
		for i := 0; i < n; i++ {
			buf = append(buf, fmt.Sprintf("%d\n", i)...)
		}
		if err := fsys.WriteFile("/p", buf); err != nil {
			return false
		}
		s, err := NewPreMap(fsys, "/p", 128, seed)
		if err != nil {
			return false
		}
		recs, err := s.Sample(20)
		if err != nil {
			return false
		}
		for _, r := range recs {
			// The byte before each sampled offset must be a newline (or
			// the offset is 0) and the line must parse back.
			if r.Offset != 0 {
				b := make([]byte, 1)
				if _, err := fsys.ReadAt("/p", r.Offset-1, b); err != nil || b[0] != '\n' {
					return false
				}
			}
			if _, err := strconv.Atoi(r.Line); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPreMapOwnedDisjointness(t *testing.T) {
	fsys, _, _ := fixtureFS(t, 5000, false)
	splits, err := fsys.Splits("/data", 1<<11)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) < 4 {
		t.Fatalf("need several splits, got %d", len(splits))
	}
	mid := len(splits) / 2
	a, err := NewPreMapOwned(fsys, "/data", splits[:mid], 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPreMapOwned(fsys, "/data", splits[mid:], 1) // same seed on purpose
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Sample(400)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Sample(400)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, r := range ra {
		seen[r.Offset] = true
		if r.Offset >= splits[mid].Offset {
			t.Fatalf("sampler A drew offset %d outside its ownership", r.Offset)
		}
	}
	for _, r := range rb {
		if seen[r.Offset] {
			t.Fatalf("offset %d sampled by both owners", r.Offset)
		}
		if r.Offset < splits[mid].Offset {
			t.Fatalf("sampler B drew offset %d outside its ownership", r.Offset)
		}
	}
}

func TestPreMapOwnedValidation(t *testing.T) {
	fsys, _, _ := fixtureFS(t, 10, false)
	if _, err := NewPreMapOwned(fsys, "/data", nil, 1); err == nil {
		t.Fatal("no splits should error")
	}
}

func TestPreMapOwnedRecordEstimates(t *testing.T) {
	fsys, _, _ := fixtureFS(t, 1000, false)
	splits, _ := fsys.Splits("/data", 1<<11)
	half := splits[:len(splits)/2]
	s, err := NewPreMapOwned(fsys, "/data", half, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(100); err != nil {
		t.Fatal(err)
	}
	ownedRecs := s.EstimatedOwnedRecords()
	var ownedBytes int64
	for _, sp := range half {
		ownedBytes += sp.Length
	}
	if s.OwnedBytes() != ownedBytes {
		t.Fatalf("OwnedBytes = %d, want %d", s.OwnedBytes(), ownedBytes)
	}
	wantRecs := ownedBytes / 10 // fixed-width 10-byte records
	if ownedRecs < wantRecs-10 || ownedRecs > wantRecs+10 {
		t.Fatalf("owned records = %d, want ≈%d", ownedRecs, wantRecs)
	}
}
