package sampling

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dfs"
)

// Reservoir is the classic Algorithm-R reservoir sampler the paper
// rejects as a primary mechanism because "the entire dataset needs to be
// read, and possibly re-read when further samples are required" (§3.3).
// It is kept as the uniformity gold standard in the sampler ablation.
type Reservoir struct {
	k      int
	seen   int64
	sample []string
	rng    *rand.Rand
}

// NewReservoir creates a reservoir of capacity k.
func NewReservoir(k int, seed uint64) (*Reservoir, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sampling: reservoir capacity must be positive, got %d", k)
	}
	return &Reservoir{k: k, rng: rand.New(rand.NewPCG(seed, 0xa54ff53a5f1d36f1))}, nil
}

// Add offers one record to the reservoir.
func (r *Reservoir) Add(record string) {
	r.seen++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, record)
		return
	}
	j := r.rng.Int64N(r.seen)
	if j < int64(r.k) {
		r.sample[j] = record
	}
}

// Seen returns how many records have been offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Sample returns the current reservoir contents (at most k records).
func (r *Reservoir) Sample() []string {
	out := make([]string, len(r.sample))
	copy(out, r.sample)
	return out
}

// BlockSample reads nBlocks whole splits chosen uniformly at random and
// returns every record in them — the naive solution of §3.3 whose sample
// "will not produce a uniformly random sample because each of the Bi …
// can contain dependencies". It is the biased baseline in the sampler
// ablation: accurate on shuffled layouts, badly skewed on clustered ones.
func BlockSample(fsys *dfs.FileSystem, path string, splitSize int64, nBlocks int, seed uint64) ([]string, error) {
	splits, err := fsys.Splits(path, splitSize)
	if err != nil {
		return nil, err
	}
	if nBlocks > len(splits) {
		nBlocks = len(splits)
	}
	rng := rand.New(rand.NewPCG(seed, 0x510e527fade682d1))
	perm := rng.Perm(len(splits))
	var out []string
	for _, si := range perm[:nBlocks] {
		rd, err := fsys.NewLineReader(splits[si], 0)
		if err != nil {
			return nil, err
		}
		for rd.Next() {
			out = append(out, rd.Text())
		}
		if rd.Err() != nil {
			return nil, rd.Err()
		}
	}
	return out, nil
}

// TwoFile implements the 2-file + ARHASH scheme of Olken & Rotem that the
// paper cites as the closest file-sampling relative (§7): a memory-
// resident portion F1 (a prefix of splits cached in RAM) and a disk
// portion F2. Each draw picks F1 with probability |F1|/(|F1|+|F2|), else
// seeks into F2 — cutting expected disk seeks by the cached fraction.
type TwoFile struct {
	fs       *dfs.FileSystem
	path     string
	memLines []string // F1, fully cached
	memBytes int64
	size     int64
	rng      *rand.Rand
	chunk    int
}

// NewTwoFile caches the first memSplits splits of path in memory as F1.
func NewTwoFile(fsys *dfs.FileSystem, path string, splitSize int64, memSplits int, seed uint64) (*TwoFile, error) {
	splits, err := fsys.Splits(path, splitSize)
	if err != nil {
		return nil, err
	}
	size, err := fsys.Stat(path)
	if err != nil {
		return nil, err
	}
	if memSplits > len(splits) {
		memSplits = len(splits)
	}
	t := &TwoFile{
		fs:    fsys,
		path:  path,
		size:  size,
		rng:   rand.New(rand.NewPCG(seed, 0x9b05688c2b3e6c1f)),
		chunk: 256,
	}
	for _, sp := range splits[:memSplits] {
		rd, err := fsys.NewLineReader(sp, 0)
		if err != nil {
			return nil, err
		}
		for rd.Next() {
			t.memLines = append(t.memLines, rd.Text())
		}
		if rd.Err() != nil {
			return nil, rd.Err()
		}
		t.memBytes += sp.Length
	}
	return t, nil
}

// Sample draws n lines (with replacement — the scheme's natural mode).
func (t *TwoFile) Sample(n int) ([]string, error) {
	if t.size == 0 {
		return nil, ErrExhausted
	}
	out := make([]string, 0, n)
	for len(out) < n {
		if t.memBytes > 0 && t.rng.Float64() < float64(t.memBytes)/float64(t.size) {
			// F1: free in-memory draw.
			out = append(out, t.memLines[t.rng.IntN(len(t.memLines))])
			continue
		}
		// F2: positioned disk read (charged a seek by the DFS).
		lo := t.memBytes
		if lo >= t.size {
			lo = 0
		}
		pos := lo + t.rng.Int64N(t.size-lo)
		line, _, err := t.fs.ReadLineAt(t.path, pos, t.chunk)
		if err != nil {
			return out, err
		}
		out = append(out, line)
	}
	return out, nil
}

// MemFraction reports the fraction of the file served from memory.
func (t *TwoFile) MemFraction() float64 {
	if t.size == 0 {
		return 0
	}
	return float64(t.memBytes) / float64(t.size)
}
