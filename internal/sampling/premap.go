// Package sampling implements EARL's two samplers over the simulated DFS
// — pre-map sampling (Algorithm 2 of the paper: random line offsets read
// directly from file splits before any mapper sees them) and post-map
// sampling (Algorithm 1: hash-pooled key/value pairs drawn without
// replacement after the map-side read) — together with the baselines the
// paper discusses in §7: reservoir sampling (uniform but reads
// everything), block sampling (fast but biased under clustered layouts),
// and a 2-file ARHASH-style sampler.
package sampling

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"

	"repro/internal/colscan"
	"repro/internal/dfs"
)

// ErrExhausted is returned when a sampler cannot produce more distinct
// records than the file contains.
var ErrExhausted = errors.New("sampling: sample space exhausted")

// Record is one sampled line with its provenance.
type Record struct {
	Line   string
	Split  int   // index of the split it came from
	Offset int64 // file offset where the line starts
}

// PreMap samples whole lines directly from a DFS file *before* map-side
// loading — the paper's fastest path, because no full scan is needed.
// It maintains, per logical split, the set of line-start offsets already
// included (the paper's "bit-vector representing the start byte locations
// of the lines we had already included", §3.3), so repeated Sample calls
// extend the sample without replacement — the Δs expansions of the EARL
// iteration.
//
// Uniformity caveat (also the paper's): positions are drawn uniformly
// over bytes and backtracked to line starts, so a line's inclusion
// probability is proportional to its length. For fixed-width records —
// the common case for numeric data — this is exactly uniform; for
// variable-length records the paper accepts the approximation, and so do
// we (documented here, measured in the Fig. 9 ablation).
type PreMap struct {
	fs     dfs.View
	path   string
	splits []dfs.Split          // the splits this sampler owns
	size   int64                // whole-file size
	owned  int64                // total bytes of owned splits
	taken  []map[int64]struct{} // per split: sampled line-start offsets
	nTaken int
	bytes  int64 // total bytes of sampled lines (for fraction estimates)
	rng    *rand.Rand
	chunk  int

	// Columnar state (EnableColumnar): draws resolve against decoded
	// split blocks instead of per-record ReadLineAt seeks, once a split
	// is hot enough to be worth decoding (or another watch already paid
	// for its block in the shared cache).
	colFormat colscan.Format
	cache     *colscan.Cache
	version   int64
	blocks    []*colscan.Block // per owned split, lazily resolved
	hits      []int            // per owned split: seek-path resolutions so far
}

// decodeAfterHits is the floor of the per-split hot threshold: below
// it, draws always stay on the positioned-read path (a pilot probing
// 256 records, or an o(N) refresh reading ~24, must not decode whole
// splits). The full threshold is byte-break-even (hotThreshold): a
// split is decoded only once its seek windows would have read about as
// many bytes as the split body itself, so columnar decode never
// inflates a run's I/O beyond ~2x the pure seek path — the §3.3
// sub-scan property figures 5 and 10 reproduce. A block already
// decoded by anyone else (cache Peek) is adopted immediately.
const decodeAfterHits = 32

// hotThreshold returns the seek-hit count at which decoding sp becomes
// byte-neutral: hits × seek-window ≥ split length, floored at
// decodeAfterHits.
func (s *PreMap) hotThreshold(sp dfs.Split) int {
	window := s.chunk
	if window <= 0 {
		window = 256 // ReadLineAt's default chunk
	}
	t := int(sp.Length / int64(2*window))
	if t < decodeAfterHits {
		t = decodeAfterHits
	}
	return t
}

// NewPreMap opens a pre-map sampler over path, using splits of splitSize
// bytes (DFS block size if 0).
func NewPreMap(fsys dfs.View, path string, splitSize int64, seed uint64) (*PreMap, error) {
	splits, err := fsys.Splits(path, splitSize)
	if err != nil {
		return nil, err
	}
	return NewPreMapOwned(fsys, path, splits, seed)
}

// NewPreMapOwned opens a pre-map sampler restricted to the given splits
// of path — the per-mapper ownership EARL uses so that parallel map
// tasks sample disjoint regions without coordination. A drawn line is
// accepted only if it *starts* inside an owned split, so two samplers
// with disjoint split sets can never sample the same record.
func NewPreMapOwned(fsys dfs.View, path string, splits []dfs.Split, seed uint64) (*PreMap, error) {
	if len(splits) == 0 {
		return nil, errors.New("sampling: no splits owned")
	}
	size, err := fsys.Stat(path)
	if err != nil {
		return nil, err
	}
	taken := make([]map[int64]struct{}, len(splits))
	for i := range taken {
		taken[i] = make(map[int64]struct{})
	}
	var owned int64
	for _, sp := range splits {
		owned += sp.Length
	}
	return &PreMap{
		fs:     fsys,
		path:   path,
		splits: splits,
		size:   size,
		owned:  owned,
		taken:  taken,
		rng:    rand.New(rand.NewPCG(seed, 0xbb67ae8584caa73b)),
		chunk:  256,
	}, nil
}

// EnableColumnar switches this sampler's draws onto the vectorized scan
// path: hot splits are decoded once into colscan blocks (through cache
// when non-nil, so concurrent watches share the decode) and SampleCols
// delivers parsed columns instead of raw lines. The record sequence a
// fixed seed produces is bit-identical to the Sample path — both
// resolve the same drawn byte positions to the same record starts and
// keep the same without-replacement bookkeeping.
func (s *PreMap) EnableColumnar(cache *colscan.Cache, format colscan.Format) error {
	if format == colscan.FormatNone {
		return errors.New("sampling: EnableColumnar needs a concrete format")
	}
	ver, err := s.fs.Version(s.path)
	if err != nil {
		return err
	}
	s.colFormat = format
	s.cache = cache
	s.version = ver
	s.blocks = make([]*colscan.Block, len(s.splits))
	s.hits = make([]int, len(s.splits))
	return nil
}

// Sample draws n additional distinct lines uniformly at random, extending
// the sample drawn so far (sampling without replacement across calls). It
// returns fewer than n records only with ErrExhausted.
func (s *PreMap) Sample(n int) ([]Record, error) {
	out := make([]Record, 0, n)
	err := s.sampleLoop(n, &out, nil)
	return out, err
}

// SampleCols is Sample on the columnar path: the n drawn records are
// appended to out as parsed columns (values, plus keys under FormatKV),
// validated by the colscan decoder (NaN/±Inf reject). It returns the
// number of records appended; fewer than n only with ErrExhausted.
// EnableColumnar must have been called.
func (s *PreMap) SampleCols(n int, out *colscan.Cols) (int, error) {
	if s.colFormat == colscan.FormatNone {
		return 0, errors.New("sampling: SampleCols before EnableColumnar")
	}
	before := out.Len()
	err := s.sampleLoop(n, nil, out)
	return out.Len() - before, err
}

// sampleLoop is the shared draw loop behind Sample and SampleCols: one
// rng draw per iteration, the same rejection and without-replacement
// bookkeeping on both paths, so a fixed seed yields the same record
// sequence regardless of which entry point (or mix) consumes it.
func (s *PreMap) sampleLoop(n int, recs *[]Record, cols *colscan.Cols) error {
	if s.size == 0 || s.owned == 0 {
		if n == 0 {
			return nil
		}
		return ErrExhausted
	}
	got := 0
	// Retry budget: rejection sampling against the already-taken set. As
	// the sampled fraction approaches 1 the rejection rate rises; the
	// budget scales generously so legitimate draws still succeed, and a
	// truly exhausted file terminates via the budget.
	budget := 64*n + 4096
	for got < n && budget > 0 {
		budget--
		// Pick a random byte position uniformly over the *owned* splits
		// (a random split weighted by its length, then a random position
		// inside it — the paper's per-split bookkeeping).
		pos, si := s.ownedPos(s.rng.Int64N(s.owned))
		if cols != nil {
			blk, err := s.blockFor(si)
			if err != nil {
				return err
			}
			if blk != nil {
				rec := blk.FindRecord(pos)
				if rec >= 0 {
					start := blk.Start(rec)
					if _, dup := s.taken[si][start]; dup {
						continue
					}
					s.taken[si][start] = struct{}{}
					s.nTaken++
					s.bytes += int64(blk.RecLen(rec)) + 1
					blk.AppendCols(cols, rec)
					got++
					continue
				}
				// pos precedes the split's first record (the tail of a
				// record owned by the previous split): the seek path
				// below backtracks across the boundary and rejects it.
			}
		}
		line, start, err := s.fs.ReadLineAt(s.path, pos, s.chunk)
		if err == io.EOF {
			continue
		}
		if err != nil {
			return err
		}
		// Backtracking can cross a split boundary: accept the line only
		// if it starts inside an owned split, so samplers with disjoint
		// ownership stay disjoint.
		osi, ok := s.splitFor(start)
		if !ok {
			continue
		}
		if _, dup := s.taken[osi][start]; dup {
			continue
		}
		if cols != nil {
			if err := colscan.AppendParsedLine(cols, s.colFormat, line); err != nil {
				return err
			}
		} else {
			*recs = append(*recs, Record{Line: line, Split: osi, Offset: start})
		}
		s.taken[osi][start] = struct{}{}
		s.nTaken++
		s.bytes += int64(len(line)) + 1
		if s.hits != nil {
			s.hits[osi]++
		}
		got++
	}
	if got < n {
		return ErrExhausted
	}
	return nil
}

// blockFor resolves the decoded block for owned split si, or nil while
// the split is still below its hot threshold (the caller stays on the
// seek path). Blocks decoded by other watches are adopted from the
// shared cache without counting toward the threshold.
func (s *PreMap) blockFor(si int) (*colscan.Block, error) {
	if blk := s.blocks[si]; blk != nil {
		return blk, nil
	}
	sp := s.splits[si]
	if s.cache != nil {
		key := colscan.BlockKey{Path: s.path, Version: s.version, Offset: sp.Offset, Length: sp.Length, Format: s.colFormat}
		if blk, ok := s.cache.Peek(key); ok {
			s.blocks[si] = blk
			return blk, nil
		}
	}
	if s.hits[si] < s.hotThreshold(sp) {
		return nil, nil
	}
	blk, err := colscan.LoadSplit(s.cache, s.fs, s.path, s.version, s.size, sp.Offset, sp.Length, s.colFormat)
	if err != nil {
		return nil, err
	}
	// Charge the decode like the scan it is: the whole split body in one
	// positioned read (colscan already issued it through s.fs, so dfs
	// metrics saw the bytes and the seek — nothing extra to do here).
	s.blocks[si] = blk
	return blk, nil
}

// ownedPos maps x ∈ [0, owned) to a file offset inside the owned splits,
// also returning the owned-split index it landed in.
func (s *PreMap) ownedPos(x int64) (int64, int) {
	for i := range s.splits {
		if x < s.splits[i].Length {
			return s.splits[i].Offset + x, i
		}
		x -= s.splits[i].Length
	}
	return s.splits[len(s.splits)-1].End() - 1, len(s.splits) - 1
}

// splitFor returns the index of the owned split containing pos.
func (s *PreMap) splitFor(pos int64) (int, bool) {
	for i := range s.splits {
		if pos >= s.splits[i].Offset && pos < s.splits[i].End() {
			return i, true
		}
	}
	return 0, false
}

// Taken returns how many distinct lines have been sampled so far.
func (s *PreMap) Taken() int { return s.nTaken }

// OwnedBytes returns the total byte length of the splits this sampler
// owns (the whole file for NewPreMap).
func (s *PreMap) OwnedBytes() int64 { return s.owned }

// EstimatedOwnedRecords estimates the number of records within the owned
// splits from the mean sampled line length.
func (s *PreMap) EstimatedOwnedRecords() int64 {
	if s.nTaken == 0 {
		return 0
	}
	avg := float64(s.bytes) / float64(s.nTaken)
	if avg <= 0 {
		return 0
	}
	return int64(float64(s.owned)/avg + 0.5)
}

// EstimatedTotalRecords estimates the file's record count from the mean
// length of sampled lines — the "estimate of the number of the key,value
// pairs produced by the pre-map sampling" the paper calls good enough for
// result correction (§3.3).
func (s *PreMap) EstimatedTotalRecords() int64 {
	if s.nTaken == 0 {
		return 0
	}
	avg := float64(s.bytes) / float64(s.nTaken)
	if avg <= 0 {
		return 0
	}
	return int64(float64(s.size)/avg + 0.5)
}

// EstimatedFraction estimates the fraction p of the data sampled so far;
// the correction function receives this.
func (s *PreMap) EstimatedFraction() float64 {
	total := s.EstimatedTotalRecords()
	if total == 0 {
		return 0
	}
	return float64(s.nTaken) / float64(total)
}

// Repin re-points the sampler's reads at v. A sampler built against a
// pinned snapshot must be repinned to the live filesystem before the
// snapshot is released (its pinned versions may then be pruned); the
// without-replacement bookkeeping, the rng stream and any adopted
// decoded blocks all carry over — over append-only growth the bytes the
// sampler owns are identical through either view.
func (s *PreMap) Repin(v dfs.View) { s.fs = v }

// Reset forgets everything sampled, restarting the without-replacement
// stream (used between independent experiment repetitions).
func (s *PreMap) Reset() {
	for i := range s.taken {
		s.taken[i] = make(map[int64]struct{})
	}
	s.nTaken = 0
	s.bytes = 0
}

// String describes the sampler state.
func (s *PreMap) String() string {
	return fmt.Sprintf("premap(%s: %d splits, %d taken)", s.path, len(s.splits), s.nTaken)
}
