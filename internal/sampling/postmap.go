package sampling

import (
	"math/rand/v2"
)

// KVPair is one key/value record pooled by the post-map sampler.
type KVPair struct {
	Key   string
	Value string
}

// PostMap implements the paper's Algorithm 1: the map side reads and
// parses *all* input, pools the pairs in a hash structure keyed by
// random hashes, and then repeatedly sends uniform without-replacement
// subsets downstream until the error is low enough. Compared to PreMap it
// pays the full load cost but knows the exact record count, so result
// correction is exact (§3.3, §6.5).
type PostMap struct {
	pool  []KVPair
	drawn int // pool[:drawn] has been sent already
	total int
	rng   *rand.Rand
}

// NewPostMap creates an empty post-map sampler.
func NewPostMap(seed uint64) *PostMap {
	return &PostMap{rng: rand.New(rand.NewPCG(seed, 0x3c6ef372fe94f82b))}
}

// Add pools one record (the "hash[key] ← value" of Algorithm 1; the pool
// is the hash table's value set, which is all the sampler ever draws
// from, so it is stored directly).
func (s *PostMap) Add(key, value string) {
	s.pool = append(s.pool, KVPair{Key: key, Value: value})
	s.total++
}

// Total returns the exact number of records pooled — the count that makes
// post-map correction exact.
func (s *PostMap) Total() int { return s.total }

// Remaining returns how many records have not been drawn yet.
func (s *PostMap) Remaining() int { return len(s.pool) - s.drawn }

// Draw returns n records uniformly at random without replacement across
// calls ("the key, value pairs already sent are removed from the
// hashmap"). It returns fewer than n with ErrExhausted when the pool runs
// dry.
func (s *PostMap) Draw(n int) ([]KVPair, error) {
	if n < 0 {
		n = 0
	}
	out := make([]KVPair, 0, n)
	for len(out) < n {
		if s.drawn >= len(s.pool) {
			return out, ErrExhausted
		}
		// Partial Fisher–Yates: swap a random undrawn element into the
		// drawn prefix.
		j := s.drawn + s.rng.IntN(len(s.pool)-s.drawn)
		s.pool[s.drawn], s.pool[j] = s.pool[j], s.pool[s.drawn]
		out = append(out, s.pool[s.drawn])
		s.drawn++
	}
	return out, nil
}

// Fraction returns the exact fraction of pooled records drawn so far.
func (s *PostMap) Fraction() float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.drawn) / float64(s.total)
}

// Reset returns all drawn records to the pool.
func (s *PostMap) Reset() { s.drawn = 0 }
