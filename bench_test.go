// Package repro_test holds the benchmark harness: one testing.B
// benchmark per figure of the paper's evaluation (each regenerates the
// figure's table end to end on the simulated cluster — run with
// `go test -bench=. -benchmem`), plus micro-benchmarks for the hot
// substrates (bootstrap resampling, pre-map sampling, delta
// maintenance). `cmd/earlbench` prints the same tables for reading.
package repro_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/bootstrap"
	"repro/internal/delta"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/sampling"
	"repro/internal/workload"

	"repro/internal/dfs"
)

// benchRecs keeps the measured-run sizes CI-friendly; earlbench uses
// larger defaults for nicer tables.
const benchRecs = 1 << 17

func runFig(b *testing.B, f func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("figure produced no rows")
		}
	}
}

func BenchmarkFig2a_CvVsB(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.Fig2a(1) })
}

func BenchmarkFig2b_CvVsN(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.Fig2b(1) })
}

func BenchmarkFig3_IntraIterSavings(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.Fig3(1) })
}

func BenchmarkFig5_MeanEarlVsStock(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.Fig5(benchRecs, 1) })
}

func BenchmarkFig6_Median(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.Fig6(benchRecs/2, 1) })
}

func BenchmarkFig7_KMeans(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.Fig7(benchRecs/4, 1) })
}

func BenchmarkFig8_SSABEvsTheory(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.Fig8(1) })
}

func BenchmarkFig9_PreVsPostMap(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.Fig9(benchRecs/2, 1) })
}

func BenchmarkFig9Ablation_SamplerBias(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.Fig9Ablation(benchRecs/4, 1) })
}

func BenchmarkFig10_UpdateOverhead(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.Fig10(1) })
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.

func BenchmarkBootstrapMonteCarloMean(b *testing.B) {
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: 10_000, Seed: 1}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bootstrap.MonteCarlo(rng, xs, bootstrap.Mean, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBootstrapMonteCarloMedian(b *testing.B) {
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: 10_000, Seed: 1}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bootstrap.MonteCarlo(rng, xs, bootstrap.Median, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Parallel bootstrap engine: sequential vs sharded worker pool. The p1
// variants run the engine on one worker (its sequential floor); pMax
// uses GOMAXPROCS. Values are bit-identical across parallelism for a
// fixed seed, so the speedup is pure scheduling.

func benchParallelMC(b *testing.B, n, B, par int, f bootstrap.Statistic) {
	b.Helper()
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: n, Seed: 1}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewPCG(1, 2))
		if _, err := bootstrap.ParallelMonteCarlo(rng, xs, f, B, par); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLabel(par int) string {
	if par == 0 {
		return fmt.Sprintf("pmax=%d", bootstrap.Workers(0))
	}
	return fmt.Sprintf("p=%d", par)
}

func BenchmarkBootstrapParallelMean(b *testing.B) {
	for _, sz := range []struct{ n, B int }{
		{10_000, 4000},
		{100_000, 400},
		{1_000_000, 100},
	} {
		for _, par := range []int{1, 2, 4, 0} {
			name := fmt.Sprintf("n=%d/B=%d/%s", sz.n, sz.B, benchLabel(par))
			b.Run(name, func(b *testing.B) { benchParallelMC(b, sz.n, sz.B, par, bootstrap.Mean) })
		}
	}
}

func BenchmarkBootstrapParallelMedian(b *testing.B) {
	for _, par := range []int{1, 4, 0} {
		name := fmt.Sprintf("n=10000/B=1000/%s", benchLabel(par))
		b.Run(name, func(b *testing.B) { benchParallelMC(b, 10_000, 1000, par, bootstrap.Median) })
	}
}

func BenchmarkBootstrapParallelMovingBlock(b *testing.B) {
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: 100_000, Seed: 1}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	blockLen := bootstrap.AutoBlockLength(len(xs))
	for _, par := range []int{1, 4, 0} {
		b.Run(fmt.Sprintf("n=100000/B=400/%s", benchLabel(par)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewPCG(1, 2))
				if _, err := bootstrap.ParallelMovingBlock(rng, xs, blockLen, bootstrap.Mean, 400, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPreMapSample(b *testing.B) {
	fsys := dfs.New(dfs.Config{BlockSize: 1 << 16, Replication: 2, DataNodes: 5, Seed: 1})
	xs, err := workload.NumericSpec{Dist: workload.Uniform, N: 200_000, Seed: 1}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	if err := fsys.WriteFile("/b", workload.EncodeLinesFixed(xs)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sampling.NewPreMap(fsys, "/b", 0, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Sample(1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaMaintainerGrow(b *testing.B) {
	ds, err := workload.NumericSpec{Dist: workload.Gaussian, N: 4096, Seed: 1}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := delta.New(delta.Config{Reducer: jobs.Mean().Reducer, B: 30, Seed: uint64(i), Key: "b"})
		if err != nil {
			b.Fatal(err)
		}
		for g := 0; g < 4; g++ {
			if err := m.Grow(ds); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkNaiveMaintainerGrow(b *testing.B) {
	ds, err := workload.NumericSpec{Dist: workload.Gaussian, N: 4096, Seed: 1}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := delta.NewNaive(delta.Config{Reducer: jobs.Mean().Reducer, B: 30, Seed: uint64(i), Key: "b"})
		if err != nil {
			b.Fatal(err)
		}
		for g := 0; g < 4; g++ {
			if err := m.Grow(ds); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBootstrapParallelDeltaGrow measures the EARL incremental loop
// (update + re-bootstrap per delta batch) on the per-resample worker
// pool, optimized and naive maintainers alike.
func BenchmarkBootstrapParallelDeltaGrow(b *testing.B) {
	ds, err := workload.NumericSpec{Dist: workload.Gaussian, N: 16_384, Seed: 1}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 4, 0} {
		b.Run(fmt.Sprintf("opt/B=100/%s", benchLabel(par)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := delta.New(delta.Config{Reducer: jobs.Mean().Reducer, B: 100, Seed: 1, Key: "b", Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				for g := 0; g < 4; g++ {
					if err := m.Grow(ds); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("naive/B=100/%s", benchLabel(par)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := delta.NewNaive(delta.Config{Reducer: jobs.Mean().Reducer, B: 100, Seed: 1, Key: "b", Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				for g := 0; g < 4; g++ {
					if err := m.Grow(ds); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkKMeansFitSample(b *testing.B) {
	pts, _, err := workload.MixtureSpec{K: 4, Dim: 2, N: 5000, Spread: 2, Sep: 100, Seed: 1}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (jobs.KMeans{K: 4, Seed: uint64(i)}).Fit(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSketchC(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.AblationSketchC(1) })
}

func BenchmarkAblationSSABE(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.AblationSSABE(1) })
}

func BenchmarkAblationPipeline(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.AblationPipeline(benchRecs/4, 1) })
}

func BenchmarkAblationJackknife(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.AblationJackknife(1) })
}

func BenchmarkAppendixA(b *testing.B) {
	runFig(b, func() (*experiments.Table, error) { return experiments.AppendixA(1) })
}
