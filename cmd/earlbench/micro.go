package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"math/rand/v2"

	"repro/internal/bootstrap"
	"repro/internal/delta"
	"repro/internal/jobs"
	"repro/internal/sampling"
	"repro/internal/workload"

	"repro/internal/dfs"
)

// microResult is one micro-benchmark measurement in the benchmark
// trajectory file (BENCH_<pr>.json) CI publishes per run.
type microResult struct {
	Family      string  `json:"family"` // bootstrap | delta | sampling
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	Iterations  int     `json:"iterations"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// microReport is the top-level JSON document.
type microReport struct {
	Suite      string        `json:"suite"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []microResult `json:"benchmarks"`
}

// runMicroJSON measures the three hot-substrate families — bootstrap
// resampling, delta maintenance, pre-map sampling — with
// testing.Benchmark and writes the results as JSON. These mirror the
// substrate micro-benchmarks in bench_test.go; the figure-level
// benchmarks stay in `go test -bench` where their runtime is at home.
func runMicroJSON(w io.Writer) error {
	var out []microResult
	var failed []string
	add := func(family, name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		if r.N == 0 {
			// testing.Benchmark swallows b.Fatal and returns a zero
			// result; surfacing the name here keeps a broken benchmark
			// from dying later as an unrelated "NaN is not JSON" error.
			failed = append(failed, family+"/"+name)
			return
		}
		out = append(out, microResult{
			Family:      family,
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			Iterations:  r.N,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	// --- Family 1: bootstrap resampling (the CPU hot path). ----------
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: 10_000, Seed: 1}.Generate()
	if err != nil {
		return err
	}
	add("bootstrap", "MonteCarloMean/n=10000/B=30", func(b *testing.B) {
		rng := rand.New(rand.NewPCG(1, 2))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bootstrap.MonteCarlo(rng, xs, bootstrap.Mean, 30); err != nil {
				b.Fatal(err)
			}
		}
	})
	big, err := workload.NumericSpec{Dist: workload.Gaussian, N: 100_000, Seed: 1}.Generate()
	if err != nil {
		return err
	}
	for _, par := range []int{1, 0} {
		par := par
		add("bootstrap", fmt.Sprintf("ParallelMonteCarloMean/n=100000/B=100/%s", benchParLabel(par)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewPCG(1, 2))
				if _, err := bootstrap.ParallelMonteCarlo(rng, big, bootstrap.Mean, 100, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// --- Family 2: delta maintenance (§4.1's optimized reducer). -----
	ds, err := workload.NumericSpec{Dist: workload.Gaussian, N: 4096, Seed: 1}.Generate()
	if err != nil {
		return err
	}
	growBench := func(naive bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := delta.Config{Reducer: jobs.Mean().Reducer, B: 30, Seed: uint64(i), Key: "b"}
				var m interface{ Grow([]float64) error }
				var err error
				if naive {
					m, err = delta.NewNaive(cfg)
				} else {
					m, err = delta.New(cfg)
				}
				if err != nil {
					b.Fatal(err)
				}
				for g := 0; g < 4; g++ {
					if err := m.Grow(ds); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	add("delta", "MaintainerGrow/n=4096/B=30/gens=4", growBench(false))
	add("delta", "NaiveMaintainerGrow/n=4096/B=30/gens=4", growBench(true))

	// --- Family 3: pre-map sampling (Algorithm 2 seek path). ---------
	fsys := dfs.New(dfs.Config{BlockSize: 1 << 16, Replication: 2, DataNodes: 5, Seed: 1})
	sv, err := workload.NumericSpec{Dist: workload.Uniform, N: 200_000, Seed: 1}.Generate()
	if err != nil {
		return err
	}
	if err := fsys.WriteFile("/bench", workload.EncodeLinesFixed(sv)); err != nil {
		return err
	}
	add("sampling", "PreMapSample/n=200000/k=1000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := sampling.NewPreMap(fsys, "/bench", 0, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Sample(1000); err != nil {
				b.Fatal(err)
			}
		}
	})

	if len(failed) > 0 {
		return fmt.Errorf("micro-benchmarks failed (ran zero iterations): %s", strings.Join(failed, ", "))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(microReport{
		Suite:      "earl-micro",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: out,
	})
}

func benchParLabel(par int) string {
	if par == 0 {
		return fmt.Sprintf("pmax=%d", bootstrap.Workers(0))
	}
	return fmt.Sprintf("p=%d", par)
}
