package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"math/rand/v2"

	"repro/internal/bootstrap"
	"repro/internal/colscan"
	"repro/internal/colseg"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/dfs"
	"repro/internal/jobs"
	"repro/internal/plan"
	"repro/internal/sampling"
	"repro/internal/workload"
)

// microResult is one micro-benchmark measurement in the benchmark
// trajectory file (BENCH_<pr>.json) CI publishes per run.
type microResult struct {
	Family      string  `json:"family"` // bootstrap | delta | sampling | scan_decode | colseg | engine | plan | journal
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	Iterations  int     `json:"iterations"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// RecordsPerSec is populated for benchmarks that process a known
	// record count per op (the scan_decode family): records/op ÷ ns/op.
	RecordsPerSec float64 `json:"records_per_sec,omitempty"`
}

// ioResult is one end-to-end IO measurement (simcost.RecordsRead) in
// the engine family: it pins the shared-pass property — a k-statistic
// run reads the input once, not k times.
type ioResult struct {
	Name        string `json:"name"`
	RecordsRead int64  `json:"records_read"`
	// RecordsPerSec is the sustained ingestion rate: records read per
	// wall-clock second over repeated warm runs (scan entries report the
	// raw decode throughput of the split scan substrate instead).
	RecordsPerSec float64 `json:"records_per_sec,omitempty"`
}

// microReport is the top-level JSON document.
type microReport struct {
	Suite      string        `json:"suite"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []microResult `json:"benchmarks"`
	// EngineIO records the end-to-end engine family's records-read
	// measurements (single statistics vs the 4-statistic shared pass).
	EngineIO []ioResult `json:"engine_io,omitempty"`
}

// runMicroJSON measures the benchmark families, writes the results as
// JSON, and — when comparePath names a baseline BENCH_*.json — fails on
// a >2x ns/op regression in any benchmark present in both files.
func runMicroJSON(w io.Writer, comparePath string) error {
	rep, err := runMicro()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if comparePath == "" {
		return nil
	}
	raw, err := os.ReadFile(comparePath)
	if err != nil {
		return err
	}
	var baseline microReport
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("bad baseline %s: %w", comparePath, err)
	}
	if regs := regressions(baseline, rep); len(regs) > 0 {
		return fmt.Errorf("benchmark regressions vs %s (>2x ns/op):\n  %s",
			comparePath, strings.Join(regs, "\n  "))
	}
	return nil
}

// regressions compares the current run against a baseline, benchmark by
// benchmark, for entries present in both (new families in the current
// run have no baseline and pass). The 2x threshold absorbs CI-runner
// noise while still catching a substrate falling off its fast path.
//
// For the delta and bootstrap families — whose hot paths are maintained
// allocation-free — a >2x allocs/op growth also fails: an accidental
// re-introduction of per-item boxing or per-resample copies shows up as
// an alloc explosion long before the ns/op noise floor admits it.
func regressions(baseline, current microReport) []string {
	old := map[string]microResult{}
	for _, b := range baseline.Benchmarks {
		old[b.Family+"/"+b.Name] = b
	}
	var regs []string
	for _, c := range current.Benchmarks {
		key := c.Family + "/" + c.Name
		was, ok := old[key]
		if !ok {
			continue
		}
		if was.NsPerOp > 0 && c.NsPerOp > 2*was.NsPerOp {
			regs = append(regs, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx)",
				key, c.NsPerOp, was.NsPerOp, c.NsPerOp/was.NsPerOp))
		}
		if (c.Family == "delta" || c.Family == "bootstrap") &&
			was.AllocsPerOp > 0 && c.AllocsPerOp > 2*was.AllocsPerOp {
			regs = append(regs, fmt.Sprintf("%s: %d allocs/op vs baseline %d (%.2fx)",
				key, c.AllocsPerOp, was.AllocsPerOp, float64(c.AllocsPerOp)/float64(was.AllocsPerOp)))
		}
	}
	return regs
}

// runMicro measures the benchmark families — bootstrap resampling,
// delta maintenance, pre-map sampling (the hot substrates), scan decode
// (per-record vs columnar split ingestion), the end-to-end engine
// family (single-statistic vs shared-pass multi-statistic, scalar vs
// grouped), the query-plan family (σ pushdown vs user-level
// post-hoc filtering, π overhead, grouped-with-filter), and the
// commit-journal family (journaled commit, crash-recovery replay,
// snapshot-pinned vs live reads) — with testing.Benchmark. The
// substrate families mirror the micro-benchmarks in bench_test.go; the
// figure-level benchmarks stay in `go test -bench` where their runtime
// is at home.
func runMicro() (microReport, error) {
	var out []microResult
	var failed []string
	addRate := func(family, name string, recsPerOp int64, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		if r.N == 0 {
			// testing.Benchmark swallows b.Fatal and returns a zero
			// result; surfacing the name here keeps a broken benchmark
			// from dying later as an unrelated "NaN is not JSON" error.
			failed = append(failed, family+"/"+name)
			return
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		res := microResult{
			Family:      family,
			Name:        name,
			NsPerOp:     ns,
			Iterations:  r.N,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if recsPerOp > 0 && ns > 0 {
			res.RecordsPerSec = float64(recsPerOp) * 1e9 / ns
		}
		out = append(out, res)
	}
	add := func(family, name string, fn func(b *testing.B)) {
		addRate(family, name, 0, fn)
	}

	// --- Family 1: bootstrap resampling (the CPU hot path). ----------
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: 10_000, Seed: 1}.Generate()
	if err != nil {
		return microReport{}, err
	}
	add("bootstrap", "MonteCarloMean/n=10000/B=30", func(b *testing.B) {
		rng := rand.New(rand.NewPCG(1, 2))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bootstrap.MonteCarlo(rng, xs, bootstrap.Mean, 30); err != nil {
				b.Fatal(err)
			}
		}
	})
	big, err := workload.NumericSpec{Dist: workload.Gaussian, N: 100_000, Seed: 1}.Generate()
	if err != nil {
		return microReport{}, err
	}
	for _, par := range []int{1, 0} {
		par := par
		add("bootstrap", fmt.Sprintf("ParallelMonteCarloMean/n=100000/B=100/%s", benchParLabel(par)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewPCG(1, 2))
				if _, err := bootstrap.ParallelMonteCarlo(rng, big, bootstrap.Mean, 100, par); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The quantile-statistic family: each resample evaluates an order
		// statistic, the path that moved from copy+sort.Float64s to an
		// in-place selection over a pooled scratch buffer.
		add("bootstrap", fmt.Sprintf("ParallelMonteCarloMedian/n=100000/B=100/%s", benchParLabel(par)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewPCG(1, 2))
				if _, err := bootstrap.ParallelMonteCarlo(rng, big, bootstrap.Median, 100, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// --- Family 2: delta maintenance (§4.1's optimized reducer). -----
	ds, err := workload.NumericSpec{Dist: workload.Gaussian, N: 4096, Seed: 1}.Generate()
	if err != nil {
		return microReport{}, err
	}
	growBench := func(naive bool, red jobs.Numeric) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := delta.Config{Reducer: red.Reducer, B: 30, Seed: uint64(i), Key: "b"}
				var m interface{ Grow([]float64) error }
				var err error
				if naive {
					m, err = delta.NewNaive(cfg)
				} else {
					m, err = delta.New(cfg)
				}
				if err != nil {
					b.Fatal(err)
				}
				for g := 0; g < 4; g++ {
					if err := m.Grow(ds); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	add("delta", "MaintainerGrow/n=4096/B=30/gens=4", growBench(false, jobs.Mean()))
	add("delta", "NaiveMaintainerGrow/n=4096/B=30/gens=4", growBench(true, jobs.Mean()))
	// The order-statistic flavour: every add/remove mutates the
	// Fenwick-indexed multiset and every generation finalizes B medians —
	// the structure the allocation-free rework targets hardest.
	add("delta", "MaintainerGrowMedian/n=4096/B=30/gens=4", growBench(false, jobs.Median()))

	// --- Family 3: pre-map sampling (Algorithm 2 seek path). ---------
	fsys := dfs.New(dfs.Config{BlockSize: 1 << 16, Replication: 2, DataNodes: 5, Seed: 1})
	sv, err := workload.NumericSpec{Dist: workload.Uniform, N: 200_000, Seed: 1}.Generate()
	if err != nil {
		return microReport{}, err
	}
	if err := fsys.WriteFile("/bench", workload.EncodeLinesFixed(sv)); err != nil {
		return microReport{}, err
	}
	add("sampling", "PreMapSample/n=200000/k=1000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := sampling.NewPreMap(fsys, "/bench", 0, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Sample(1000); err != nil {
				b.Fatal(err)
			}
		}
	})

	// --- Family 4: scan decode (split ingestion substrate). ----------
	// Three ways to ingest the same records, all walking the same file:
	//
	//   PerRecordSeek   one positioned ReadLineAt per record plus a
	//                   strconv parse — the substrate the pre-map
	//                   sampler and the maintained refresh path used
	//                   before the vectorized scan.
	//   PerRecordStream LineReader streaming plus a strconv parse per
	//                   line — the substrate the full-scan (post-map)
	//                   mappers used.
	//   Columnar        colscan.Decode: the whole split decoded once
	//                   into column batches — the new substrate behind
	//                   both routes.
	//
	// Every variant must agree on the record count, so records_per_sec
	// is directly comparable across the three.
	const scanRecs = 200_000
	scanSize, err := fsys.Stat("/bench")
	if err != nil {
		return microReport{}, err
	}
	scanSplits, err := fsys.Splits("/bench", 0)
	if err != nil {
		return microReport{}, err
	}
	var kvScan strings.Builder
	for i, v := range sv {
		fmt.Fprintf(&kvScan, "g%d\t%012.6f\n", i%8, v)
	}
	if err := fsys.WriteFile("/bench.kv", []byte(kvScan.String())); err != nil {
		return microReport{}, err
	}
	kvScanSize, err := fsys.Stat("/bench.kv")
	if err != nil {
		return microReport{}, err
	}
	kvScanSplits, err := fsys.Splits("/bench.kv", 0)
	if err != nil {
		return microReport{}, err
	}
	// The per-record variants parse with strconv exactly as the
	// pre-columnar record decoders did; colscan's fast path replaces
	// them on the new route.
	parseNumericOld := func(line string) error {
		_, err := strconv.ParseFloat(strings.TrimSpace(line), 64)
		return err
	}
	parseKVOld := func(line string) error {
		_, v, ok := strings.Cut(line, "\t")
		if !ok {
			return fmt.Errorf("no tab in %q", line)
		}
		_, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		return err
	}
	seekScan := func(path string, size int64, parse func(string) error) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				var pos int64
				for pos < size {
					line, start, err := fsys.ReadLineAt(path, pos, 0)
					if err != nil {
						b.Fatal(err)
					}
					if err := parse(line); err != nil {
						b.Fatal(err)
					}
					n++
					pos = start + int64(len(line)) + 1
				}
				if n != scanRecs {
					b.Fatalf("seek scan saw %d records, want %d", n, scanRecs)
				}
			}
		}
	}
	streamScan := func(splits []dfs.Split, parse func(string) error) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				for _, sp := range splits {
					rd, err := fsys.NewLineReader(sp, 0)
					if err != nil {
						b.Fatal(err)
					}
					for rd.Next() {
						if err := parse(rd.Text()); err != nil {
							b.Fatal(err)
						}
						n++
					}
					if err := rd.Err(); err != nil {
						b.Fatal(err)
					}
				}
				if n != scanRecs {
					b.Fatalf("stream scan saw %d records, want %d", n, scanRecs)
				}
			}
		}
	}
	columnarScan := func(path string, size int64, splits []dfs.Split, format colscan.Format) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				for _, sp := range splits {
					blk, err := colscan.Decode(fsys, path, size, sp.Offset, sp.Length, format)
					if err != nil {
						b.Fatal(err)
					}
					n += blk.NumRecords()
				}
				if n != scanRecs {
					b.Fatalf("columnar scan saw %d records, want %d", n, scanRecs)
				}
			}
		}
	}
	addRate("scan_decode", fmt.Sprintf("PerRecordSeek/numeric/n=%d", scanRecs), scanRecs,
		seekScan("/bench", scanSize, parseNumericOld))
	addRate("scan_decode", fmt.Sprintf("PerRecordStream/numeric/n=%d", scanRecs), scanRecs,
		streamScan(scanSplits, parseNumericOld))
	addRate("scan_decode", fmt.Sprintf("Columnar/numeric/n=%d", scanRecs), scanRecs,
		columnarScan("/bench", scanSize, scanSplits, colscan.FormatNumeric))
	addRate("scan_decode", fmt.Sprintf("PerRecordSeek/kv/n=%d", scanRecs), scanRecs,
		seekScan("/bench.kv", kvScanSize, parseKVOld))
	addRate("scan_decode", fmt.Sprintf("PerRecordStream/kv/n=%d", scanRecs), scanRecs,
		streamScan(kvScanSplits, parseKVOld))
	addRate("scan_decode", fmt.Sprintf("Columnar/kv/n=%d", scanRecs), scanRecs,
		columnarScan("/bench.kv", kvScanSize, kvScanSplits, colscan.FormatKV))

	// --- Family 4b: persistent columnar sidecars (colseg) ---
	//
	// The cold-read ladder the sidecar PR is about:
	//
	//   Columnar (family 4)  cold TEXT decode: parse every record
	//   ColdSidecar          cold SIDECAR read: CRC + conversion copy,
	//                        zero parsing (the new cold path)
	//   WarmCache            decoded-block cache hit: no I/O at all
	//
	// plus the write-side costs: Encode (ingest-time sidecar build) and
	// CompactBackfill (full rebuild of a sidecar-less file). The
	// acceptance criterion — cold sidecar ≥ 3× cold text — is enforced
	// below next to the shared-pass check.
	sidecarReader := colseg.NewReader(fsys)
	coldSidecar := func(path string, splits []dfs.Split, format colscan.Format) func(b *testing.B) {
		version, err := fsys.Version(path)
		if err != nil {
			version = -1 // surfaces as a guaranteed miss inside the loop
		}
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				for _, sp := range splits {
					blk, ok, err := sidecarReader.LoadColumns(colscan.BlockKey{
						Path: path, Version: version, Offset: sp.Offset, Length: sp.Length, Format: format,
					})
					if err != nil || !ok {
						b.Fatalf("sidecar read %s [%d,+%d): ok=%v err=%v", path, sp.Offset, sp.Length, ok, err)
					}
					n += blk.NumRecords()
				}
				if n != scanRecs {
					b.Fatalf("sidecar scan saw %d records, want %d", n, scanRecs)
				}
			}
		}
	}
	warmCache := func(path string, size int64, splits []dfs.Split, format colscan.Format) func(b *testing.B) {
		version, _ := fsys.Version(path)
		cache := colscan.NewCache(0)
		cache.SetStore(sidecarReader)
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				for _, sp := range splits {
					blk, err := cache.Load(fsys, size, colscan.BlockKey{
						Path: path, Version: version, Offset: sp.Offset, Length: sp.Length, Format: format,
					})
					if err != nil {
						b.Fatal(err)
					}
					n += blk.NumRecords()
				}
				if n != scanRecs {
					b.Fatalf("cached scan saw %d records, want %d", n, scanRecs)
				}
			}
		}
	}
	addRate("colseg", fmt.Sprintf("ColdSidecar/numeric/n=%d", scanRecs), scanRecs,
		coldSidecar("/bench", scanSplits, colscan.FormatNumeric))
	addRate("colseg", fmt.Sprintf("ColdSidecar/kv/n=%d", scanRecs), scanRecs,
		coldSidecar("/bench.kv", kvScanSplits, colscan.FormatKV))
	addRate("colseg", fmt.Sprintf("WarmCache/numeric/n=%d", scanRecs), scanRecs,
		warmCache("/bench", scanSize, scanSplits, colscan.FormatNumeric))
	benchRaw, err := fsys.ReadFile("/bench")
	if err != nil {
		return microReport{}, err
	}
	benchSegs, err := fsys.Segments("/bench")
	if err != nil {
		return microReport{}, err
	}
	addRate("colseg", fmt.Sprintf("Encode/numeric/n=%d", scanRecs), scanRecs, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := colseg.Build(colscan.FormatNumeric, 1, benchRaw, benchSegs, 1<<16); err != nil {
				b.Fatal(err)
			}
		}
	})
	// CompactBackfill rebuilds from the replicas: a DisableSidecars
	// ingest simulates the pre-sidecar fleet, and each op truncates the
	// sidecar to force the full re-encode path.
	cfs := dfs.New(dfs.Config{BlockSize: 1 << 16, Replication: 2, DataNodes: 5, Seed: 2, DisableSidecars: true})
	if err := cfs.WriteFile("/bench", benchRaw); err != nil {
		return microReport{}, err
	}
	addRate("colseg", fmt.Sprintf("CompactBackfill/numeric/n=%d", scanRecs), scanRecs, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfs.TruncateSidecar("/bench", 0) // no-op on the very first op (no sidecar yet)
			st, err := cfs.Compact("/bench")
			if err != nil {
				b.Fatal(err)
			}
			if !st.Rebuilt {
				b.Fatal("Compact skipped the rebuild")
			}
		}
	})

	// --- Family 5: the end-to-end engine (one generic pipeline for ---
	// scalar, shared-pass multi-statistic and grouped runs).
	const engineN = 40_000
	engineData, err := workload.NumericSpec{Dist: workload.Gaussian, N: engineN, Seed: 1}.Generate()
	if err != nil {
		return microReport{}, err
	}
	newEngineEnv := func() (*core.Env, error) {
		env, err := core.NewEnv(core.EnvConfig{Seed: 1})
		if err != nil {
			return nil, err
		}
		if err := env.FS.WriteFile("/bench/data", workload.EncodeLinesFixed(engineData)); err != nil {
			return nil, err
		}
		env.Metrics.Reset()
		return env, nil
	}
	p50, err := jobs.Quantile(0.5)
	if err != nil {
		return microReport{}, err
	}
	p95, err := jobs.Quantile(0.95)
	if err != nil {
		return microReport{}, err
	}
	jset4 := []jobs.Numeric{jobs.Mean(), p50, p95, jobs.Count()}
	engineOpts := core.Options{Sigma: 0.05, Seed: 2}

	add("engine", fmt.Sprintf("RunSingle/mean/n=%d", engineN), func(b *testing.B) {
		env, err := newEngineEnv()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(env, jobs.Mean(), "/bench/data", engineOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("engine", fmt.Sprintf("RunMulti/mean+p50+p95+count/n=%d", engineN), func(b *testing.B) {
		env, err := newEngineEnv()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.RunMulti(env, jset4, "/bench/data", engineOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	var kv strings.Builder
	for i, v := range engineData {
		fmt.Fprintf(&kv, "g%d\t%012.6f\n", i%8, v)
	}
	add("engine", fmt.Sprintf("RunGrouped/mean/keys=8/n=%d", engineN), func(b *testing.B) {
		env, err := core.NewEnv(core.EnvConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := env.FS.WriteFile("/bench/kv", []byte(kv.String())); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.RunGrouped(env, jobs.Mean(), core.TabRoute(), "/bench/kv", engineOpts); err != nil {
				b.Fatal(err)
			}
		}
	})

	// --- Family 6: the query-plan layer (σ/π/γ pushdown). ------------
	// Pushdown runs the filter inside the post-map pool fill — σ is
	// evaluated against the columnar decode, survivors alone enter the
	// pool, and SSABE sizes the run against the effective subpopulation,
	// so the per-record work past the decode is bounded by the sample,
	// not the file. The post-hoc baseline is what a user without the
	// plan layer writes — decode every record, filter in a loop, reduce
	// over every survivor — whose post-decode work grows with the file.
	const planN = 400_000
	planData, err := workload.NumericSpec{Dist: workload.Uniform, N: planN, Seed: 3}.Generate()
	if err != nil {
		return microReport{}, err
	}
	newPlanEnv := func() (*core.Env, error) {
		env, err := core.NewEnv(core.EnvConfig{Seed: 3})
		if err != nil {
			return nil, err
		}
		if err := env.FS.WriteFile("/bench/plan", workload.EncodeLinesFixed(planData)); err != nil {
			return nil, err
		}
		env.Metrics.Reset()
		return env, nil
	}
	planOpts := core.Options{Sigma: 0.05, Seed: 4}
	planBench := func(spec plan.Spec) func(b *testing.B) {
		return func(b *testing.B) {
			env, err := newPlanEnv()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunPlan(env, spec, planOpts); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// The post-hoc baseline filters ABOVE the record decode — without
	// the plan layer there is no way to run σ inside the columnar scan
	// (filtered decode is exactly what the pushdown adds), so every
	// record is materialized as a line and parsed before the predicate
	// can look at it. It also answers less: an exact mean over the
	// survivors, with no confidence interval.
	postHocBench := func(thresh float64) func(b *testing.B) {
		return func(b *testing.B) {
			env, err := newPlanEnv()
			if err != nil {
				b.Fatal(err)
			}
			splits, err := env.FS.Splits("/bench/plan", 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var sum float64
				n := 0
				for _, sp := range splits {
					rd, err := env.FS.NewLineReader(sp, 0)
					if err != nil {
						b.Fatal(err)
					}
					for rd.Next() {
						v, err := strconv.ParseFloat(strings.TrimSpace(rd.Text()), 64)
						if err != nil {
							b.Fatal(err)
						}
						if v < thresh {
							sum += v
							n++
						}
					}
					if err := rd.Err(); err != nil {
						b.Fatal(err)
					}
				}
				if n == 0 {
					b.Fatal("post-hoc filter kept nothing")
				}
				_ = sum / float64(n)
			}
		}
	}
	for _, sel := range []struct {
		label  string
		filter string
		thresh float64
	}{
		{"sel=1%", "v < 1", 1},
		{"sel=10%", "v < 10", 10},
		{"sel=90%", "v < 90", 90},
	} {
		add("plan", fmt.Sprintf("PushdownFilter/mean/%s/n=%d", sel.label, planN),
			planBench(plan.Spec{Path: "/bench/plan", Stats: []string{"mean"}, Filter: sel.filter, Sampler: "post-map"}))
		add("plan", fmt.Sprintf("PostHocFilter/mean/%s/n=%d", sel.label, planN),
			postHocBench(sel.thresh))
	}
	// Derived-column overhead: the same sampled mean with and without an
	// affine π — the delta is the per-record expression-eval cost on the
	// pushdown path (the no-derive spec is degenerate and takes the
	// legacy path, so the pair brackets the whole plan overhead).
	add("plan", fmt.Sprintf("Derive/none/n=%d", planN),
		planBench(plan.Spec{Path: "/bench/plan", Stats: []string{"mean"}}))
	add("plan", fmt.Sprintf("Derive/affine/n=%d", planN),
		planBench(plan.Spec{Path: "/bench/plan", Stats: []string{"mean"}, Derive: "v * 2 + 1"}))
	// Grouped-with-filter: σ and a computed γ label in one pushed-down
	// pass (4 value-derived groups over the filtered half).
	add("plan", fmt.Sprintf("GroupedFilter/mean/groups=4/n=%d", planN),
		planBench(plan.Spec{Path: "/bench/plan", Stats: []string{"mean"}, Filter: "v < 50", GroupBy: "floor(v / 12.5)"}))

	// --- Family 7: the commit journal (durability substrate). --------
	// CommitWrite/CommitAppend price the journaled mutation path: frame
	// the record (CRC-32C over the header+payload), append it to the
	// log, and apply the new file state. RecoverReplay prices crash
	// recovery end to end — parse and verify the journal image, then
	// re-ingest every commit. SnapshotRead vs LiveRead brackets the
	// MVCC cost of reading through a pinned commit versus the live
	// chain head.
	const journalBatch = 1 << 13 // 8 KiB per commit payload
	journalData := workload.EncodeLinesFixed(planData[:journalBatch/28])
	newJournalFS := func() *dfs.FileSystem {
		return dfs.New(dfs.Config{Seed: 5, BlockSize: 1 << 16})
	}
	add("journal", fmt.Sprintf("CommitWrite/bytes=%d", len(journalData)), func(b *testing.B) {
		fsys := newJournalFS()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fsys.WriteFile("/bench/journal", journalData); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("journal", fmt.Sprintf("CommitAppend/bytes=%d", len(journalData)), func(b *testing.B) {
		fsys := newJournalFS()
		if err := fsys.WriteFile("/bench/journal", journalData); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%256 == 255 {
				// Bound file growth so per-op cost stays the steady-state
				// append, not an ever-longer sidecar extension.
				b.StopTimer()
				if err := fsys.WriteFile("/bench/journal", journalData); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			if err := fsys.Append("/bench/journal", journalData); err != nil {
				b.Fatal(err)
			}
		}
	})
	const journalCommits = 64
	{
		fsys := newJournalFS()
		if err := fsys.WriteFile("/bench/journal", journalData); err != nil {
			return microReport{}, err
		}
		for i := 1; i < journalCommits; i++ {
			if err := fsys.Append("/bench/journal", journalData); err != nil {
				return microReport{}, err
			}
		}
		image := fsys.JournalBytes()
		add("journal", fmt.Sprintf("RecoverReplay/commits=%d/bytes=%d", journalCommits, len(image)), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := dfs.Recover(dfs.Config{Seed: 5, BlockSize: 1 << 16}, image); err != nil {
					b.Fatal(err)
				}
			}
		})
		readBuf := make([]byte, journalBatch)
		readAt := func(b *testing.B, v dfs.View) {
			b.Helper()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.ReadAt("/bench/journal", int64(i%journalCommits)*journalBatch, readBuf); err != nil {
					b.Fatal(err)
				}
			}
		}
		add("journal", fmt.Sprintf("LiveRead/bytes=%d", journalBatch), func(b *testing.B) {
			readAt(b, fsys)
		})
		add("journal", fmt.Sprintf("SnapshotRead/bytes=%d", journalBatch), func(b *testing.B) {
			snap := fsys.Snapshot()
			defer snap.Release()
			readAt(b, snap)
		})
	}

	// Shared-pass IO: records read by each statistic alone vs all four
	// in one pass. The multi run must stay within 1.1× of the most
	// demanding single — the criterion a regression here would break.
	// RecordsRead includes the pilot phase (charged since the pilot cost
	// attribution), which every single pays in full while the multi run
	// draws it once — the shared pass is *helped*, not hurt, by the
	// attribution.
	// ingestRate times reps warm repetitions of run and returns records
	// read per wall-clock second (the first, cold run has already warmed
	// the decoded-block cache, so this is the steady-state rate).
	ingestRate := func(env *core.Env, reps int, run func() error) (float64, error) {
		before := env.Metrics.RecordsRead.Load()
		start := time.Now()
		for r := 0; r < reps; r++ {
			if err := run(); err != nil {
				return 0, err
			}
		}
		elapsed := time.Since(start).Seconds()
		n := env.Metrics.RecordsRead.Load() - before
		if elapsed <= 0 {
			return 0, nil
		}
		return float64(n) / elapsed, nil
	}
	var engineIO []ioResult
	var maxSingleRead int64
	for _, job := range jset4 {
		job := job
		env, err := newEngineEnv()
		if err != nil {
			return microReport{}, err
		}
		if _, err := core.Run(env, job, "/bench/data", engineOpts); err != nil {
			return microReport{}, err
		}
		read := env.Metrics.RecordsRead.Load()
		rate, err := ingestRate(env, 8, func() error {
			_, err := core.Run(env, job, "/bench/data", engineOpts)
			return err
		})
		if err != nil {
			return microReport{}, err
		}
		engineIO = append(engineIO, ioResult{Name: "single/" + job.Name, RecordsRead: read, RecordsPerSec: rate})
		if read > maxSingleRead {
			maxSingleRead = read
		}
	}
	env, err := newEngineEnv()
	if err != nil {
		return microReport{}, err
	}
	if _, err := core.RunMulti(env, jset4, "/bench/data", engineOpts); err != nil {
		return microReport{}, err
	}
	multiRead := env.Metrics.RecordsRead.Load()
	multiRate, err := ingestRate(env, 8, func() error {
		_, err := core.RunMulti(env, jset4, "/bench/data", engineOpts)
		return err
	})
	if err != nil {
		return microReport{}, err
	}
	engineIO = append(engineIO, ioResult{Name: "multi/mean+p50+p95+count", RecordsRead: multiRead, RecordsPerSec: multiRate})
	// Surface the scan substrate's raw decode throughput alongside the
	// end-to-end rates: the per-record vs columnar pair is the headline
	// speedup of the vectorized scan path.
	for _, r := range out {
		if (r.Family != "scan_decode" && r.Family != "colseg") || r.RecordsPerSec == 0 {
			continue
		}
		engineIO = append(engineIO, ioResult{
			Name:          "scan/" + r.Name,
			RecordsRead:   scanRecs,
			RecordsPerSec: r.RecordsPerSec,
		})
	}
	if float64(multiRead) > 1.1*float64(maxSingleRead) {
		return microReport{}, fmt.Errorf(
			"shared-pass criterion violated: 4-statistic run read %d records vs %d for the largest single (>1.1x)",
			multiRead, maxSingleRead)
	}
	// The sidecar PR's acceptance criterion: a cold read served from the
	// persistent columnar sidecar must sustain at least 3x the cold text
	// decode's record rate on the same data and split geometry.
	rateOf := func(family, prefix string) float64 {
		for _, r := range out {
			if r.Family == family && strings.HasPrefix(r.Name, prefix) {
				return r.RecordsPerSec
			}
		}
		return 0
	}
	coldText := rateOf("scan_decode", "Columnar/numeric/")
	coldSide := rateOf("colseg", "ColdSidecar/numeric/")
	if coldText <= 0 || coldSide < 3*coldText {
		return microReport{}, fmt.Errorf(
			"cold-read criterion violated: sidecar %.3gM rec/s < 3x text decode %.3gM rec/s",
			coldSide/1e6, coldText/1e6)
	}

	if len(failed) > 0 {
		return microReport{}, fmt.Errorf("micro-benchmarks failed (ran zero iterations): %s", strings.Join(failed, ", "))
	}
	return microReport{
		Suite:      "earl-micro",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: out,
		EngineIO:   engineIO,
	}, nil
}

func benchParLabel(par int) string {
	if par == 0 {
		return fmt.Sprintf("pmax=%d", bootstrap.Workers(0))
	}
	return fmt.Sprintf("p=%d", par)
}
