// Command earlbench regenerates the paper's evaluation figures (§6) on
// the simulated cluster and prints each as an aligned table. Run a
// single figure by name or everything:
//
//	earlbench all
//	earlbench fig2a fig2b fig3 fig5 fig6 fig7 fig8 fig9 fig9ablation fig10
//	earlbench appendixa ablation-sketch ablation-ssabe ablation-pipeline ablation-jackknife
//
// Flags:
//
//	-seed N         deterministic seed (default 1)
//	-records N      laptop-scale measurement size where applicable
//	-quick          smaller measurement sizes (CI-friendly)
//	-parallelism N  resampling worker-pool size (0 = GOMAXPROCS,
//	                1 = sequential engine); tables are identical for a
//	                fixed seed at any value
//	-json           run the benchmark families — the hot substrates
//	                (bootstrap resampling, delta maintenance, pre-map
//	                sampling), scan decode, the end-to-end engine family
//	                (single-statistic vs 4-statistic shared pass,
//	                scalar vs grouped, with records-read measurements),
//	                the query-plan family (σ pushdown vs post-hoc
//	                filtering, π overhead, grouped-with-filter) and the
//	                commit-journal family (journaled commit, recovery
//	                replay, snapshot vs live reads) — and
//	                emit the results as JSON instead of figure tables;
//	                CI publishes this as the benchmark trajectory
//	                artifact (BENCH_<pr>.json)
//	-compare FILE   with -json: compare against a baseline BENCH_*.json
//	                and exit non-zero on a >2x ns/op regression in any
//	                benchmark present in both files (CI pins the
//	                substrate families against the committed baseline)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 1, "deterministic seed")
	records := flag.Int("records", 1<<20, "laptop-scale record count for measured runs")
	quick := flag.Bool("quick", false, "use smaller measurement sizes")
	parallelism := flag.Int("parallelism", 0, "resampling worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	jsonOut := flag.Bool("json", false, "emit benchmark-family ns/op + engine IO as JSON (ignores figure arguments)")
	compareTo := flag.String("compare", "", "with -json: baseline BENCH_*.json; exit non-zero on >2x ns/op regression")
	flag.Parse()

	if *jsonOut {
		if err := runMicroJSON(os.Stdout, *compareTo); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	experiments.Parallelism = *parallelism
	recs := *records
	if *quick {
		recs = 1 << 17
	}
	figs := []fig{
		{"fig2a", func() (*experiments.Table, error) { return experiments.Fig2a(*seed) }},
		{"fig2b", func() (*experiments.Table, error) { return experiments.Fig2b(*seed) }},
		{"fig3", func() (*experiments.Table, error) { return experiments.Fig3(*seed) }},
		{"fig5", func() (*experiments.Table, error) { return experiments.Fig5(recs, *seed) }},
		{"fig6", func() (*experiments.Table, error) { return experiments.Fig6(recs/2, *seed) }},
		{"fig7", func() (*experiments.Table, error) { return experiments.Fig7(recs/5, *seed) }},
		{"fig8", func() (*experiments.Table, error) { return experiments.Fig8(*seed) }},
		{"fig9", func() (*experiments.Table, error) { return experiments.Fig9(recs/2, *seed) }},
		{"fig9ablation", func() (*experiments.Table, error) { return experiments.Fig9Ablation(recs/4, *seed) }},
		{"fig10", func() (*experiments.Table, error) { return experiments.Fig10(*seed) }},
		{"appendixa", func() (*experiments.Table, error) { return experiments.AppendixA(*seed) }},
		{"ablation-sketch", func() (*experiments.Table, error) { return experiments.AblationSketchC(*seed) }},
		{"ablation-ssabe", func() (*experiments.Table, error) { return experiments.AblationSSABE(*seed) }},
		{"ablation-pipeline", func() (*experiments.Table, error) { return experiments.AblationPipeline(recs/4, *seed) }},
		{"ablation-jackknife", func() (*experiments.Table, error) { return experiments.AblationJackknife(*seed) }},
	}

	args := flag.Args()
	if len(args) == 0 {
		usage(figs)
		os.Exit(2)
	}
	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, f := range figs {
				want[f.name] = true
			}
			continue
		}
		want[a] = true
	}
	known := map[string]bool{}
	for _, f := range figs {
		known[f.name] = true
	}
	for name := range want {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			usage(figs)
			os.Exit(2)
		}
	}

	exit := 0
	for _, f := range figs {
		if !want[f.name] {
			continue
		}
		start := time.Now()
		table, err := f.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", f.name, err)
			exit = 1
			continue
		}
		table.Fprint(os.Stdout)
		fmt.Printf("(%s regenerated in %.2fs)\n", f.name, time.Since(start).Seconds())
	}
	os.Exit(exit)
}

type fig struct {
	name string
	run  func() (*experiments.Table, error)
}

func usage(figs []fig) {
	fmt.Fprintln(os.Stderr, "usage: earlbench [-seed N] [-records N] [-quick] <figure>... | all")
	fmt.Fprint(os.Stderr, "figures:")
	for _, f := range figs {
		fmt.Fprintf(os.Stderr, " %s", f.name)
	}
	fmt.Fprintln(os.Stderr)
}
