package main

import (
	"strings"
	"testing"
)

func report(entries ...microResult) microReport {
	return microReport{Benchmarks: entries}
}

func TestRegressionsNsPerOp(t *testing.T) {
	base := report(microResult{Family: "delta", Name: "Grow", NsPerOp: 100})
	cur := report(microResult{Family: "delta", Name: "Grow", NsPerOp: 150})
	if regs := regressions(base, cur); len(regs) != 0 {
		t.Fatalf("1.5x ns/op flagged: %v", regs)
	}
	cur = report(microResult{Family: "delta", Name: "Grow", NsPerOp: 201})
	regs := regressions(base, cur)
	if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("2x ns/op not flagged: %v", regs)
	}
}

func TestRegressionsAllocsOnlyHotFamilies(t *testing.T) {
	base := report(
		microResult{Family: "delta", Name: "Grow", NsPerOp: 100, AllocsPerOp: 1000},
		microResult{Family: "bootstrap", Name: "MC", NsPerOp: 100, AllocsPerOp: 10},
		microResult{Family: "engine", Name: "Run", NsPerOp: 100, AllocsPerOp: 10},
	)
	cur := report(
		microResult{Family: "delta", Name: "Grow", NsPerOp: 100, AllocsPerOp: 2500},
		microResult{Family: "bootstrap", Name: "MC", NsPerOp: 100, AllocsPerOp: 25},
		microResult{Family: "engine", Name: "Run", NsPerOp: 100, AllocsPerOp: 1000},
	)
	regs := regressions(base, cur)
	if len(regs) != 2 {
		t.Fatalf("want delta+bootstrap allocs flagged (engine exempt), got %v", regs)
	}
	for _, r := range regs {
		if !strings.Contains(r, "allocs/op") {
			t.Fatalf("unexpected regression line %q", r)
		}
	}
}

func TestRegressionsIgnoresNewAndZeroBaselines(t *testing.T) {
	base := report(microResult{Family: "delta", Name: "Grow", NsPerOp: 100, AllocsPerOp: 0})
	cur := report(
		microResult{Family: "delta", Name: "Grow", NsPerOp: 120, AllocsPerOp: 50},
		microResult{Family: "delta", Name: "Brand/New", NsPerOp: 9999, AllocsPerOp: 9999},
	)
	if regs := regressions(base, cur); len(regs) != 0 {
		t.Fatalf("zero-alloc baseline or new benchmark flagged: %v", regs)
	}
}
