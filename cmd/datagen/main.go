// Command datagen materialises the synthetic datasets of the evaluation
// to stdout or a local file, in the same line formats the simulated DFS
// stores: fixed-width numeric records, categorical 0/1 records,
// comma-separated points, or AR(1) series. Useful for inspecting the
// workloads or feeding external tools.
//
//	datagen -kind numeric -dist zipf -n 100000 > zipf.txt
//	datagen -kind points -k 5 -n 50000 -out pts.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/workload"
)

// errUsage signals that the FlagSet already reported the problem (and
// usage) to stderr; main exits non-zero without repeating it.
var errUsage = errors.New("datagen: invalid arguments")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
}

// run is the testable entry point: flags in, encoded dataset out (to
// stdout, or to -out with a summary on stderr).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		kind      = fs.String("kind", "numeric", "numeric|categorical|points|ar1")
		dist      = fs.String("dist", "uniform", "uniform|gaussian|zipf|pareto")
		n         = fs.Int("n", 100_000, "records")
		seed      = fs.Uint64("seed", 1, "seed")
		clustered = fs.Bool("clustered", false, "sort records on disk (block-sampling adversary)")
		p         = fs.Float64("p", 0.3, "success probability (categorical)")
		k         = fs.Int("k", 4, "clusters (points)")
		dim       = fs.Int("dim", 2, "dimensions (points)")
		phi       = fs.Float64("phi", 0.8, "autocorrelation (ar1)")
		out       = fs.String("out", "", "output file (stdout if empty)")
		fixed     = fs.Bool("fixed", true, "fixed-width numeric encoding (exactly uniform pre-map sampling)")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	var data []byte
	switch *kind {
	case "numeric":
		xs, err := workload.NumericSpec{Dist: workload.Dist(*dist), N: *n, Seed: *seed, Clustered: *clustered}.Generate()
		if err != nil {
			return err
		}
		if *fixed {
			data = workload.EncodeLinesFixed(xs)
		} else {
			data = workload.EncodeLines(xs)
		}
	case "categorical":
		xs, err := workload.CategoricalSpec{P: *p, N: *n, Seed: *seed}.Generate()
		if err != nil {
			return err
		}
		data = workload.EncodeLinesFixed(xs)
	case "points":
		pts, _, err := workload.MixtureSpec{K: *k, Dim: *dim, N: *n, Spread: 2, Sep: 120, Seed: *seed}.Generate()
		if err != nil {
			return err
		}
		data = workload.EncodePoints(pts)
	case "ar1":
		xs, err := workload.AR1Spec{Phi: *phi, Sigma: 1, Mu: 10, N: *n, Seed: *seed}.Generate()
		if err != nil {
			return err
		}
		data = workload.EncodeLinesFixed(xs)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}

	if *out == "" {
		_, err := stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d bytes (%d records) to %s\n", len(data), *n, *out)
	return nil
}
