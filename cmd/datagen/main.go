// Command datagen materialises the synthetic datasets of the evaluation
// to stdout or a local file, in the same line formats the simulated DFS
// stores: fixed-width numeric records, categorical 0/1 records,
// comma-separated points, or AR(1) series. Useful for inspecting the
// workloads or feeding external tools.
//
//	datagen -kind numeric -dist zipf -n 100000 > zipf.txt
//	datagen -kind points -k 5 -n 50000 -out pts.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		kind      = flag.String("kind", "numeric", "numeric|categorical|points|ar1")
		dist      = flag.String("dist", "uniform", "uniform|gaussian|zipf|pareto")
		n         = flag.Int("n", 100_000, "records")
		seed      = flag.Uint64("seed", 1, "seed")
		clustered = flag.Bool("clustered", false, "sort records on disk (block-sampling adversary)")
		p         = flag.Float64("p", 0.3, "success probability (categorical)")
		k         = flag.Int("k", 4, "clusters (points)")
		dim       = flag.Int("dim", 2, "dimensions (points)")
		phi       = flag.Float64("phi", 0.8, "autocorrelation (ar1)")
		out       = flag.String("out", "", "output file (stdout if empty)")
		fixed     = flag.Bool("fixed", true, "fixed-width numeric encoding (exactly uniform pre-map sampling)")
	)
	flag.Parse()

	var data []byte
	switch *kind {
	case "numeric":
		xs, err := workload.NumericSpec{Dist: workload.Dist(*dist), N: *n, Seed: *seed, Clustered: *clustered}.Generate()
		if err != nil {
			log.Fatal(err)
		}
		if *fixed {
			data = workload.EncodeLinesFixed(xs)
		} else {
			data = workload.EncodeLines(xs)
		}
	case "categorical":
		xs, err := workload.CategoricalSpec{P: *p, N: *n, Seed: *seed}.Generate()
		if err != nil {
			log.Fatal(err)
		}
		data = workload.EncodeLinesFixed(xs)
	case "points":
		pts, _, err := workload.MixtureSpec{K: *k, Dim: *dim, N: *n, Spread: 2, Sep: 120, Seed: *seed}.Generate()
		if err != nil {
			log.Fatal(err)
		}
		data = workload.EncodePoints(pts)
	case "ar1":
		xs, err := workload.AR1Spec{Phi: *phi, Sigma: 1, Mu: 10, N: *n, Seed: *seed}.Generate()
		if err != nil {
			log.Fatal(err)
		}
		data = workload.EncodeLinesFixed(xs)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}

	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d bytes (%d records) to %s\n", len(data), *n, *out)
}
