package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNumericFixedWidth(t *testing.T) {
	var out, errw strings.Builder
	if err := run([]string{"-kind", "numeric", "-n", "100", "-seed", "2"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 100 {
		t.Fatalf("%d records, want 100", len(lines))
	}
	for _, l := range lines {
		if len(l) != len(lines[0]) {
			t.Fatalf("fixed-width violated: %q vs %q", l, lines[0])
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	gen := func() string {
		var out, errw strings.Builder
		if err := run([]string{"-kind", "numeric", "-dist", "zipf", "-n", "50", "-seed", "9"}, &out, &errw); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if gen() != gen() {
		t.Fatal("same seed produced different data")
	}
}

func TestPointsKind(t *testing.T) {
	var out, errw strings.Builder
	if err := run([]string{"-kind", "points", "-k", "3", "-n", "60"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.Contains(first, ",") {
		t.Fatalf("points record %q not comma-separated", first)
	}
}

func TestOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.txt")
	var out, errw strings.Builder
	if err := run([]string{"-kind", "ar1", "-n", "40", "-out", path}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("out file empty")
	}
	if !strings.Contains(errw.String(), "wrote") {
		t.Fatalf("missing summary on stderr: %q", errw.String())
	}
}

func TestRejectsBadKind(t *testing.T) {
	var out, errw strings.Builder
	if err := run([]string{"-kind", "bogus"}, &out, &errw); err == nil {
		t.Fatal("bad kind should fail")
	}
}
