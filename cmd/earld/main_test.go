package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDaemonEndToEnd boots earld on an ephemeral port and walks the API
// the way the README's curl session does: load data, one-shot query,
// open a watch, append, read the refreshed watch, check metrics.
func TestDaemonEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	var out, errw strings.Builder
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-demo-records", "30000"}, &out, &errw, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("earld exited before listening: %v\n%s%s", err, out.String(), errw.String())
	case <-time.After(30 * time.Second):
		t.Fatal("earld never became ready")
	}
	base := "http://" + addr

	post := func(path, body string) map[string]any {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s: status %d: %v", path, resp.StatusCode, m)
		}
		return m
	}

	q := post("/query", `{"job":"mean","path":"/demo/gaussian"}`)
	rep, ok := q["report"].(map[string]any)
	if !ok || rep["SampleSize"] == nil {
		t.Fatalf("query response missing report: %v", q)
	}

	// Plan fields ride the same body: a pushed-down filter answers over
	// the subpopulation, a malformed expression is a client error (400)
	// with the offending column, not a 500.
	fq := post("/query", `{"stats":["mean"],"path":"/demo/gaussian","filter":"v > 0"}`)
	if frep, ok := fq["report"].(map[string]any); !ok || frep["SampleSize"] == nil {
		t.Fatalf("filtered query response missing report: %v", fq)
	}
	resp400, err := http.Post(base+"/query", "application/json",
		strings.NewReader(`{"stats":["mean"],"path":"/demo/gaussian","filter":"v +"}`))
	if err != nil {
		t.Fatal(err)
	}
	var badBody map[string]any
	if err := json.NewDecoder(resp400.Body).Decode(&badBody); err != nil {
		t.Fatal(err)
	}
	resp400.Body.Close()
	if resp400.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed filter should be 400, got %d: %v", resp400.StatusCode, badBody)
	}
	if msg, _ := badBody["error"].(string); !strings.Contains(msg, "column") {
		t.Fatalf("expression error should carry its column: %v", badBody)
	}

	w1 := post("/watch", `{"job":"mean","path":"/demo/gaussian","sigma":0.05}`)
	id, _ := w1["id"].(string)
	if id == "" {
		t.Fatalf("watch response missing id: %v", w1)
	}
	w2 := post("/watch", `{"job":"mean","path":"/demo/gaussian","sigma":0.05}`)
	if shared, _ := w2["shared"].(bool); !shared {
		t.Fatalf("second identical watch not deduped: %v", w2)
	}
	if w2["id"] != id {
		t.Fatalf("deduped watch got a different id: %v vs %v", w2["id"], id)
	}

	vals := make([]string, 0, 1000)
	for i := 0; i < 1000; i++ {
		vals = append(vals, fmt.Sprintf("%g", 5+float64(i%7)))
	}
	post("/append", `{"path":"/demo/gaussian","values":[`+strings.Join(vals, ",")+`]}`)

	resp, err := http.Get(base + "/watch/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var info map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if refreshes, _ := info["refreshes"].(float64); refreshes != 1 {
		t.Fatalf("watch after one append should show 1 refresh, got %v", info["refreshes"])
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv, _ := metrics["server"].(map[string]any)
	if srv == nil || srv["watchesShared"].(float64) != 1 {
		t.Fatalf("metrics missing dedup accounting: %v", metrics["server"])
	}
}
