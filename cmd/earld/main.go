// Command earld is the EARL approximate-query daemon: one simulated
// cluster served to many concurrent clients over an HTTP JSON API, with
// admission control, shared maintained queries, and an append-aware
// result cache (see internal/serve for the design).
//
//	earld -addr :8080 -max-inflight 4 -queue 64
//
// A quick session with curl:
//
//	curl -X POST localhost:8080/data \
//	     -d '{"path":"/t/latency","values":[12.1,14.2,13.7,15.9]}'
//	curl -X POST localhost:8080/query -d '{"job":"mean","path":"/t/latency"}'
//	curl -X POST localhost:8080/watch -d '{"job":"p99","path":"/t/latency"}'
//	curl -X POST localhost:8080/append -d '{"path":"/t/latency","values":[99.5]}'
//	curl localhost:8080/watch/w1
//	curl localhost:8080/metrics
//
// Query bodies are the engine-wide canonical plan spec: a stats list
// computes several statistics in one shared sampling pass (one report
// per statistic), and filter/derive/by are the σ/π/γ query-plan
// expressions — the filter is pushed below sampling, so sample sizing
// and the reported confidence intervals are relative to the filtered
// subpopulation. Grouped queries ("by") watch per-group aggregates —
// over "key\tvalue" records for by:"key", or bucketed by a numeric
// expression. Everything flows through the same dedup registry and
// result cache as scalar queries; {"job":...}, {"jobs":[...]} and
// {"grouped":true} remain accepted as aliases for stats / by:"key":
//
//	curl -X POST localhost:8080/query \
//	     -d '{"stats":["mean","p50","p95","count"],"path":"/t/latency"}'
//	curl -X POST localhost:8080/query \
//	     -d '{"stats":["mean"],"path":"/t/latency","filter":"v > 50","derive":"log(v)"}'
//	curl -X POST localhost:8080/watch \
//	     -d '{"stats":["mean"],"path":"/t/latency","by":"floor(v / 25)"}'
//	curl -X POST localhost:8080/watch -d '{"job":"mean","grouped":true,"path":"/t/kv"}'
//
// The optional -demo-records flag preloads a Gaussian dataset at
// /demo/gaussian so the API is immediately queryable.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run builds the cluster and server and serves until the listener
// fails. ready, when non-nil, receives the bound address once the
// listener is up (the smoke test uses it; main passes nil).
func run(args []string, stdout, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("earld", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		inflight = fs.Int("max-inflight", 4, "queries executing concurrently")
		queue    = fs.Int("queue", 64, "queued queries beyond max-inflight before rejecting")
		timeout  = fs.Duration("query-timeout", 60*time.Second, "per-query deadline (queueing + execution)")
		watches  = fs.Int("max-watches", 256, "distinct maintained queries held at once")
		idleTTL  = fs.Duration("watch-idle-ttl", 15*time.Minute, "idle watches past this are evictable when the registry is full")
		nodes    = fs.Int("nodes", 5, "simulated cluster size")
		seed     = fs.Uint64("seed", 1, "cluster seed")
		cacheB   = fs.Int64("cache-bytes", 0, "decoded-block scan cache budget in bytes (0 = default 256 MiB)")
		demoN    = fs.Int("demo-records", 0, "preload /demo/gaussian with this many records (0 = none)")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	env, err := core.NewEnv(core.EnvConfig{DataNodes: *nodes, Seed: *seed, CacheBytes: *cacheB})
	if err != nil {
		return err
	}
	srv, err := serve.New(env, serve.Config{
		MaxInFlight:  *inflight,
		MaxQueue:     *queue,
		QueryTimeout: *timeout,
		MaxWatches:   *watches,
		WatchIdleTTL: *idleTTL,
	})
	if err != nil {
		return err
	}
	if *demoN > 0 {
		xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: *demoN, Seed: *seed + 1}.Generate()
		if err != nil {
			return err
		}
		if err := env.FS.WriteFile("/demo/gaussian", workload.EncodeLinesFixed(xs)); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "preloaded /demo/gaussian with %d records\n", *demoN)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "earld listening on %s (max-inflight=%d queue=%d nodes=%d)\n",
		ln.Addr(), *inflight, *queue, *nodes)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	return http.Serve(ln, srv.Handler())
}
