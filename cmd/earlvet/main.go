// Command earlvet runs the EARL invariant analyzers over the module:
//
//	go run ./cmd/earlvet ./...
//
// It machine-checks the determinism, allocation, and pooling contracts
// that earlier PRs fixed by hand (see internal/analysis): randomness
// must flow through seeded stream constructors, map iteration must not
// feed order-sensitive sinks, //earl:hotpath loops must not allocate
// per iteration, pool buffers must be released on every return path,
// and sentinel errors must be matched with errors.Is.
//
// Flags:
//
//	-list           print the analyzers and exit
//	-run a,b        run only the named analyzers
//	-json           emit findings as a JSON array
//	-fix            apply suggested fixes in place (then re-run gofmt)
//	-notests        skip _test.go files and test package variants
//
// Exit status is 1 when any finding is reported, 2 on a driver error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list    = flag.Bool("list", false, "print the analyzers and exit")
		only    = flag.String("run", "", "comma-separated analyzer names to run (default all)")
		asJSON  = flag.Bool("json", false, "emit findings as JSON")
		fix     = flag.Bool("fix", false, "apply suggested fixes in place")
		noTests = flag.Bool("notests", false, "skip test files and test package variants")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var names []string
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	analyzers, err := analysis.ByName(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "earlvet:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "earlvet:", err)
		return 2
	}
	loader := analysis.NewLoader(dir)
	pkgs, err := loader.Load(patterns, !*noTests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "earlvet:", err)
		return 2
	}

	diags, fset, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "earlvet:", err)
		return 2
	}

	if *fix {
		changed, err := analysis.ApplyFixes(fset, diags)
		for _, f := range changed {
			fmt.Fprintln(os.Stderr, "earlvet: fixed", f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "earlvet:", err)
			return 2
		}
		return 0
	}

	if *asJSON {
		type finding struct {
			Analyzer string `json:"analyzer"`
			Position string `json:"position"`
			Message  string `json:"message"`
			Fixable  bool   `json:"fixable,omitempty"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				Analyzer: d.Category,
				Position: fset.Position(d.Pos).String(),
				Message:  d.Message,
				Fixable:  len(d.SuggestedFixes) > 0,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "earlvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", fset.Position(d.Pos), d.Category, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "earlvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
