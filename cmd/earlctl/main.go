// Command earlctl runs one EARL query end to end on the simulated
// cluster: it generates a synthetic dataset (or uses values piped via a
// file of numbers handled by -input), runs the requested statistic with
// an error bound, and prints the early result next to the exact one.
//
//	earlctl -job mean -dist uniform -n 1000000 -sigma 0.05
//	earlctl -job median -dist pareto -n 500000 -sigma 0.03 -sampler post-map
//	earlctl -job p99 -dist zipf -n 1000000
//	earlctl -job kmeans -n 200000 -k 5
//	earlctl -job mean -n 400000 -kill 3,4   # fault-tolerance demo (§3.4)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/earl"
	"repro/internal/jobs"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		jobName = flag.String("job", "mean", "mean|sum|count|median|variance|stddev|proportion|p90|p99|kmeans")
		dist    = flag.String("dist", "uniform", "uniform|gaussian|zipf|pareto (numeric jobs)")
		n       = flag.Int("n", 1_000_000, "records to generate")
		sigma   = flag.Float64("sigma", 0.05, "target error bound σ")
		sampler = flag.String("sampler", "pre-map", "pre-map|post-map")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		k       = flag.Int("k", 4, "clusters (kmeans)")
		kill    = flag.String("kill", "", "comma-separated node ids to kill mid-job")
		nodes   = flag.Int("nodes", 5, "cluster size")
		par     = flag.Int("parallelism", 0, "resampling worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	cluster, err := earl.NewCluster(earl.ClusterConfig{DataNodes: *nodes, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	if *jobName == "kmeans" {
		runKMeans(cluster, *n, *k, *sigma, *seed)
		return
	}

	job, err := pickJob(*jobName)
	if err != nil {
		log.Fatal(err)
	}
	if *n <= 0 {
		log.Fatal("need -n > 0")
	}
	var xs []float64
	if *jobName == "proportion" {
		xs, err = workload.CategoricalSpec{P: 0.35, N: *n, Seed: *seed}.Generate()
	} else {
		xs, err = workload.NumericSpec{Dist: workload.Dist(*dist), N: *n, Seed: *seed}.Generate()
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.WriteValues("/data", xs); err != nil {
		log.Fatal(err)
	}
	cluster.ResetMetrics()

	if *kill != "" {
		go func() {
			for cluster.Metrics().RecordsMapped < 100 {
			}
			for _, tok := range strings.Split(*kill, ",") {
				id, err := strconv.Atoi(strings.TrimSpace(tok))
				if err != nil {
					log.Printf("bad node id %q", tok)
					continue
				}
				if err := cluster.KillNode(id); err != nil {
					log.Print(err)
				} else {
					fmt.Printf("!! killed node %d mid-job\n", id)
				}
			}
		}()
	}

	samplerKind := earl.PreMapSampling
	if *sampler == "post-map" {
		samplerKind = earl.PostMapSampling
	}
	rep, err := cluster.Run(job, "/data", earl.Options{
		Sigma:       *sigma,
		Sampler:     samplerKind,
		Seed:        *seed + 7,
		Parallelism: *par,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := cluster.Metrics()

	fmt.Printf("job          : %s over %d %s records (σ=%.3g, %s sampling)\n",
		job.Name, *n, *dist, *sigma, *sampler)
	fmt.Printf("early result : %.6g  (cv %.4f, 95%% CI [%.6g, %.6g])\n",
		rep.Estimate, rep.CV, rep.CILo, rep.CIHi)
	fmt.Printf("sample       : %d records (%.3f%% of input), B=%d, %d iteration(s), converged=%v\n",
		rep.SampleSize, 100*rep.FractionP, rep.B, rep.Iterations, rep.Converged)
	if rep.UsedFull {
		fmt.Println("mode         : exact full-data run (sampling could not pay off)")
	}
	if rep.FailedMaps > 0 {
		fmt.Printf("failures     : %d mapper task(s) lost, job finished anyway (§3.4)\n", rep.FailedMaps)
	}
	fmt.Printf("I/O          : %.2f MB read of %.2f MB input\n",
		float64(m.BytesRead)/(1<<20), float64(*n*19)/(1<<20))

	exact, _, err := cluster.RunExact(job, "/data")
	if err != nil {
		log.Fatal(err)
	}
	rel := 0.0
	if exact != 0 {
		rel = (rep.Estimate - exact) / exact
		if rel < 0 {
			rel = -rel
		}
	}
	fmt.Printf("exact        : %.6g  (early result off by %.3f%%)\n", exact, 100*rel)
}

func pickJob(name string) (earl.Job, error) {
	switch name {
	case "mean":
		return earl.Mean(), nil
	case "sum":
		return earl.Sum(), nil
	case "count":
		return earl.Count(), nil
	case "median":
		return earl.Median(), nil
	case "variance":
		return earl.Variance(), nil
	case "stddev":
		return earl.StdDev(), nil
	case "proportion":
		return earl.Proportion(), nil
	case "p90":
		return earl.Quantile(0.90)
	case "p99":
		return earl.Quantile(0.99)
	default:
		return earl.Job{}, fmt.Errorf("unknown job %q", name)
	}
}

func runKMeans(cluster *earl.Cluster, n, k int, sigma float64, seed uint64) {
	pts, truth, err := workload.MixtureSpec{
		K: k, Dim: 2, N: n, Spread: 2, Sep: 120, Seed: seed,
	}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.WriteFile("/pts", workload.EncodePoints(pts)); err != nil {
		log.Fatal(err)
	}
	cluster.ResetMetrics()
	rep, err := cluster.RunKMeans("/pts", earl.KMeans{K: k, Seed: seed + 1}, earl.KMeansOptions{Sigma: sigma, Seed: seed + 2})
	if err != nil {
		log.Fatal(err)
	}
	errRel, err := jobs.CentroidError(rep.Centers, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("early K-Means: k=%d over %d points, sample %d (%.2f%%), cost cv %.4f, converged=%v\n",
		k, n, rep.SampleSize, 100*float64(rep.SampleSize)/float64(n), rep.CV, rep.Converged)
	fmt.Printf("centroid error vs generator truth: %.2f%% (paper bound: 5%%)\n", 100*errRel)
	for i, c := range rep.Centers {
		fmt.Printf("  center %d: %v\n", i, c)
	}
	os.Exit(0)
}
