// Command earlctl runs one EARL query end to end on the simulated
// cluster: it generates a synthetic dataset (or uses values piped via a
// file of numbers handled by -input), runs the requested statistic with
// an error bound, and prints the early result next to the exact one.
//
//	earlctl -job mean -dist uniform -n 1000000 -sigma 0.05
//	earlctl -job median -dist pareto -n 500000 -sigma 0.03 -sampler post-map
//	earlctl -job p99 -dist zipf -n 1000000
//	earlctl -job kmeans -n 200000 -k 5
//	earlctl -job mean -n 400000 -kill 3,4   # fault-tolerance demo (§3.4)
//	earlctl -job mean -n 500000 -watch 3    # continuous ingest: 3 append+refresh cycles
//
// Repeating -job runs the statistics as ONE shared-pass multi-statistic
// query — one pilot, one sample, one pass over the records — printing
// one report per statistic (and -watch maintains them all under one
// refresh per append):
//
//	earlctl -job mean -job p50 -job p95 -job count -n 1000000
//	earlctl -job mean -job p99 -n 500000 -watch 3
//
// -filter, -derive and -by lift the run onto the query-plan layer: the
// same composable σ/π/γ algebra (and the same spec validation) earld's
// HTTP API and the earl library expose. The filter is pushed below
// sampling, so sample sizing and the reported confidence intervals are
// relative to the filtered subpopulation:
//
//	earlctl -job mean -filter "v > 50" -n 1000000
//	earlctl -job p95 -filter "v > 0" -derive "log(v)" -n 500000
//	earlctl -job mean -by "floor(v / 25)" -n 500000      # grouped by bucket
//	earlctl -job mean -by key -keys 12 -n 500000         # grouped by record key
//	earlctl -job mean -filter "v < 10" -watch 3          # maintained plan
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/earl"
	"repro/internal/colscan"
	"repro/internal/jobs"
	"repro/internal/workload"
)

// errUsage signals that the FlagSet already reported the problem (and
// usage) to stderr; main exits non-zero without repeating it.
var errUsage = errors.New("earlctl: invalid arguments")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
}

// run is the testable entry point: flags in, report text on stdout,
// diagnostics (flag errors, usage) on stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("earlctl", flag.ContinueOnError)
	var jobNames jobListFlag
	fs.Var(&jobNames, "job", "mean|sum|count|median|variance|stddev|proportion|p90|p99|kmeans; repeat for one shared-pass multi-statistic query")
	var (
		dist    = fs.String("dist", "uniform", "uniform|gaussian|zipf|pareto (numeric jobs)")
		n       = fs.Int("n", 1_000_000, "records to generate")
		sigma   = fs.Float64("sigma", 0.05, "target error bound σ")
		sampler = fs.String("sampler", "pre-map", "pre-map|post-map")
		seed    = fs.Uint64("seed", 1, "deterministic seed")
		k       = fs.Int("k", 4, "clusters (kmeans)")
		kill    = fs.String("kill", "", "comma-separated node ids to kill mid-job")
		nodes   = fs.Int("nodes", 5, "cluster size")
		par     = fs.Int("parallelism", 0, "resampling worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
		watch   = fs.Int("watch", 0, "continuous ingest: append+refresh cycles after the first answer")
		appendN = fs.Int("append-n", 0, "records per appended batch (-watch); n/10 if 0")
		filter  = fs.String("filter", "", "query plan σ: boolean expression records must satisfy, e.g. 'v > 50 && v < 90'")
		derive  = fs.String("derive", "", "query plan π: numeric expression replacing the analyzed value, e.g. 'log(v)'")
		by      = fs.String("by", "", "query plan γ: 'key' or a numeric bucketing expression, e.g. 'floor(v / 25)'")
		keys    = fs.Int("keys", 8, "distinct keys for generated key\\tvalue data (plans that read key)")
		compact = fs.Bool("compact", false, "after the run, compact /data's columnar sidecar to full coverage and report it")
		journal = fs.Bool("journal", false, "after the run, print the DFS commit journal's health counters")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	cluster, err := earl.NewCluster(earl.ClusterConfig{DataNodes: *nodes, Seed: *seed})
	if err != nil {
		return err
	}

	if len(jobNames) == 0 {
		jobNames = jobListFlag{"mean"}
	}
	for _, name := range jobNames {
		if name == "kmeans" && len(jobNames) > 1 {
			return fmt.Errorf("kmeans cannot join a multi-statistic query")
		}
	}
	if jobNames[0] == "kmeans" {
		if *filter != "" || *derive != "" || *by != "" {
			return fmt.Errorf("kmeans does not take -filter/-derive/-by")
		}
		if *compact {
			return fmt.Errorf("kmeans does not take -compact")
		}
		return runKMeans(stdout, cluster, *n, *k, *sigma, *seed)
	}

	jset := make([]earl.Job, len(jobNames))
	for i, name := range jobNames {
		if jset[i], err = pickJob(name); err != nil {
			return err
		}
	}
	job := jset[0]
	if *n <= 0 {
		return fmt.Errorf("need -n > 0")
	}
	var samplerKind earl.SamplerKind
	switch *sampler {
	case "pre-map":
		samplerKind = earl.PreMapSampling
	case "post-map":
		samplerKind = earl.PostMapSampling
	default:
		return fmt.Errorf("unknown -sampler %q (pre-map|post-map)", *sampler)
	}

	if *filter != "" || *derive != "" || *by != "" {
		if *kill != "" {
			return fmt.Errorf("-kill is not supported with -filter/-derive/-by")
		}
		if *compact {
			return fmt.Errorf("-compact is not supported with -filter/-derive/-by")
		}
		opts := earl.Options{
			Sigma:       *sigma,
			Sampler:     samplerKind,
			Seed:        *seed + 7,
			Parallelism: *par,
		}
		return runPlanQuery(stdout, cluster, opts, planParams{
			stats: jobNames, filter: *filter, derive: *derive, by: *by,
			dist: *dist, n: *n, keys: *keys, seed: *seed,
			cycles: *watch, appendN: *appendN, sampler: *sampler,
		})
	}

	xs, err := genValues(jobNames[0], *dist, *n, *seed)
	if err != nil {
		return err
	}
	if err := cluster.WriteValues("/data", xs); err != nil {
		return err
	}
	cluster.ResetMetrics()

	// The kill goroutine shares stdout with the report printing below, so
	// run() stops it and waits (killWait) before writing anything else —
	// the injected io.Writer is not assumed to be safe for concurrent use.
	killStop := make(chan struct{})
	killDone := make(chan struct{})
	killWait := func() {
		close(killStop)
		<-killDone
	}
	if *kill == "" {
		close(killDone)
	} else {
		go func() {
			defer close(killDone)
			for cluster.Metrics().RecordsMapped < 100 {
				select {
				case <-killStop:
					return
				case <-time.After(50 * time.Microsecond):
				}
			}
			for _, tok := range strings.Split(*kill, ",") {
				id, err := strconv.Atoi(strings.TrimSpace(tok))
				if err != nil {
					fmt.Fprintf(stderr, "bad node id %q\n", tok)
					continue
				}
				if err := cluster.KillNode(id); err != nil {
					fmt.Fprintln(stderr, err)
				} else {
					fmt.Fprintf(stdout, "!! killed node %d mid-job\n", id)
				}
			}
		}()
	}

	opts := earl.Options{
		Sigma:       *sigma,
		Sampler:     samplerKind,
		Seed:        *seed + 7,
		Parallelism: *par,
	}
	if *watch > 0 {
		p := watchParams{
			jobName: jobNames[0], dist: *dist, n: *n, cycles: *watch,
			appendN: *appendN, seed: *seed,
		}
		if len(jset) > 1 {
			err = runMultiWatch(stdout, cluster, jset, opts, killWait, p)
		} else {
			err = runWatch(stdout, cluster, job, opts, killWait, p)
		}
		if err != nil {
			return err
		}
		// Watch cycles append in small batches that leave sidecar
		// coverage behind — exactly what -compact repairs.
		return finishReports(stdout, cluster, *compact, *journal)
	}

	if len(jset) > 1 {
		if err := runMultiOnce(stdout, cluster, jset, opts, killWait, *n, *dist); err != nil {
			return err
		}
		return finishReports(stdout, cluster, *compact, *journal)
	}

	rep, err := cluster.Run(job, "/data", opts)
	killWait()
	if err != nil {
		return err
	}
	m := cluster.Metrics()

	fmt.Fprintf(stdout, "job          : %s over %d %s records (σ=%.3g, %s sampling)\n",
		job.Name, *n, *dist, *sigma, *sampler)
	fmt.Fprintf(stdout, "early result : %.6g  (cv %.4f, 95%% CI [%.6g, %.6g])\n",
		rep.Estimate, rep.CV, rep.CILo, rep.CIHi)
	fmt.Fprintf(stdout, "sample       : %d records (%.3f%% of input), B=%d, %d iteration(s), converged=%v\n",
		rep.SampleSize, 100*rep.FractionP, rep.B, rep.Iterations, rep.Converged)
	if rep.UsedFull {
		fmt.Fprintln(stdout, "mode         : exact full-data run (sampling could not pay off)")
	}
	if rep.FailedMaps > 0 {
		fmt.Fprintf(stdout, "failures     : %d mapper task(s) lost, job finished anyway (§3.4)\n", rep.FailedMaps)
	}
	fmt.Fprintf(stdout, "I/O          : %.2f MB read of %.2f MB input\n",
		float64(m.BytesRead)/(1<<20), float64(*n*19)/(1<<20))

	exact, _, err := cluster.RunExact(job, "/data")
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "exact        : %.6g  (early result off by %.3f%%)\n", exact, 100*relErr(rep.Estimate, exact))
	return finishReports(stdout, cluster, *compact, *journal)
}

// finishReports prints the optional post-run maintenance reports
// (-compact, -journal) in a fixed order.
func finishReports(stdout io.Writer, cluster *earl.Cluster, compact, journal bool) error {
	if compact {
		if err := compactReport(stdout, cluster); err != nil {
			return err
		}
	}
	if journal {
		journalReport(stdout, cluster)
	}
	return nil
}

// journalReport prints the DFS commit journal's health counters — and,
// on a cluster rebuilt by earl.RecoverCluster, what the replay found.
func journalReport(stdout io.Writer, cluster *earl.Cluster) {
	js := cluster.JournalStats()
	fmt.Fprintf(stdout, "journal      : %d commit(s), %.2f MB log, %d snapshot pin(s)\n",
		js.Commits, float64(js.Bytes)/(1<<20), js.Pins)
	if js.Recovered {
		fmt.Fprintf(stdout, "recovery     : replayed %d commit(s) (%.2f MB); torn tail=%v, %d byte(s) dropped\n",
			js.Recovery.Commits, float64(js.Recovery.Bytes)/(1<<20), js.Recovery.TornTail, js.Recovery.DroppedBytes)
	}
}

// compactReport compacts /data's persistent columnar sidecar and prints
// what happened: backfilled or re-encoded to full coverage, or already
// fully covered from ingest.
func compactReport(stdout io.Writer, cluster *earl.Cluster) error {
	st, err := cluster.Compact("/data")
	if err != nil {
		return err
	}
	action := "already covered"
	if st.Rebuilt {
		action = "rebuilt"
	}
	fmt.Fprintf(stdout, "compact      : %s — %d chunk(s), %.2f MB sidecar covering %.2f MB of /data\n",
		action, st.Chunks, float64(st.SidecarBytes)/(1<<20), float64(st.CoveredBytes)/(1<<20))
	return nil
}

// jobListFlag collects repeated -job flags; several jobs run as one
// shared-pass multi-statistic query.
type jobListFlag []string

// String implements flag.Value.
func (j *jobListFlag) String() string { return strings.Join(*j, ",") }

// Set implements flag.Value.
func (j *jobListFlag) Set(v string) error {
	*j = append(*j, v)
	return nil
}

// runMultiOnce runs a multi-statistic shared-pass query and prints one
// report per statistic next to its exact answer.
func runMultiOnce(stdout io.Writer, cluster *earl.Cluster, jset []earl.Job, opts earl.Options, killWait func(), n int, dist string) error {
	reps, err := cluster.RunMulti(jset, "/data", opts)
	killWait()
	if err != nil {
		return err
	}
	m := cluster.Metrics()
	fmt.Fprintf(stdout, "jobs         : %s over %d %s records (σ=%.3g) — one shared sampling pass\n",
		jobSetName(jset), n, dist, opts.Sigma)
	fmt.Fprintf(stdout, "sample       : %d records (%.3f%% of input), %d iteration(s); %d records read\n",
		reps[0].SampleSize, 100*reps[0].FractionP, reps[0].Iterations, m.RecordsRead)
	for i, rep := range reps {
		exact, _, err := cluster.RunExact(jset[i], "/data")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-12s : %.6g  (cv %.4f, B=%d, converged=%v; exact %.6g, off by %.3f%%)\n",
			rep.Job, rep.Estimate, rep.CV, rep.B, rep.Converged, exact, 100*relErr(rep.Estimate, exact))
	}
	return nil
}

// runMultiWatch maintains a multi-statistic query under append+refresh
// cycles, printing every statistic per refresh.
func runMultiWatch(stdout io.Writer, cluster *earl.Cluster, jset []earl.Job, opts earl.Options, killWait func(), p watchParams) error {
	w, err := cluster.WatchMulti(jset, "/data", opts)
	killWait()
	if err != nil {
		return err
	}
	defer w.Close()
	first := w.Reports()
	fmt.Fprintf(stdout, "watch        : %s over %d %s records (σ=%.3g) — one shared maintained sample\n",
		jobSetName(jset), p.n, p.dist, opts.Sigma)
	for _, rep := range first {
		fmt.Fprintf(stdout, "first answer : %-12s %.6g  (cv %.4f, sample %d)\n", rep.Job, rep.Estimate, rep.CV, rep.SampleSize)
	}

	appendN := p.appendN
	if appendN <= 0 {
		appendN = p.n / 10
		if appendN < 1 {
			appendN = 1
		}
	}
	for cycle := 1; cycle <= p.cycles; cycle++ {
		batch, err := genValues(p.jobName, p.dist, appendN, p.seed+uint64(100+cycle))
		if err != nil {
			return err
		}
		if err := cluster.AppendValues("/data", batch); err != nil {
			return err
		}
		before := cluster.Metrics()
		reps, err := w.Refresh()
		if err != nil {
			return err
		}
		cost := cluster.Metrics().Sub(before)
		fmt.Fprintf(stdout, "refresh %-2d   : +%d records; read %d records / %.2f KB for all %d statistics\n",
			cycle, appendN, cost.RecordsRead, float64(cost.BytesRead)/(1<<10), len(jset))
		for _, rep := range reps {
			fmt.Fprintf(stdout, "  %-12s: %.6g (cv %.4f, sample %d)\n", rep.Job, rep.Estimate, rep.CV, rep.SampleSize)
		}
	}

	last := w.Reports()
	for i, rep := range last {
		exact, _, err := cluster.RunExact(jset[i], "/data")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "exact        : %-12s %.6g  (maintained answer off by %.3f%%)\n",
			rep.Job, exact, 100*relErr(rep.Estimate, exact))
	}
	return nil
}

// planParams bundles the query-plan demo knobs (-filter/-derive/-by).
type planParams struct {
	stats              []string
	filter, derive, by string
	dist               string
	n, keys            int
	seed               uint64
	cycles, appendN    int
	sampler            string
}

// runPlanQuery runs a -filter/-derive/-by invocation through the public
// query-plan surface: the fluent builder assembles the spec, the engine
// validates and compiles it (the same shared path earld's HTTP API
// uses), and the filter is pushed below sampling. Plans that read the
// record key get generated "key\tvalue" data; everything else reuses
// the numeric -dist generators.
func runPlanQuery(stdout io.Writer, cluster *earl.Cluster, opts earl.Options, p planParams) error {
	q := earl.NewQuery("/data").
		Filter(p.filter).
		Derive(p.derive).
		GroupBy(p.by).
		Stats(p.stats...)

	// Normalize + compile up front: positioned expression errors surface
	// before any data is generated, and the compiled plan's input format
	// decides which generator to run.
	norm, err := q.Spec().Normalize()
	if err != nil {
		return err
	}
	prog, err := norm.Compile()
	if err != nil {
		return err
	}
	// A degenerate "by key" compiles to a nil program (legacy grouped
	// path, tab-separated route), so it needs KV data too.
	kv := norm.GroupBy == "key" || (prog != nil && prog.InputFormat() == colscan.FormatKV)
	writeBatch := func(n int, seed uint64, first bool) error {
		if kv {
			recs, err := workload.KVSpec{Keys: p.keys, N: n, Seed: seed}.Generate()
			if err != nil {
				return err
			}
			if first {
				return cluster.WriteFile("/data", workload.EncodeStrings(recs))
			}
			return cluster.Append("/data", workload.EncodeStrings(recs))
		}
		xs, err := genValues(norm.Stats[0], p.dist, n, seed)
		if err != nil {
			return err
		}
		if first {
			return cluster.WriteValues("/data", xs)
		}
		return cluster.AppendValues("/data", xs)
	}
	if err := writeBatch(p.n, p.seed, true); err != nil {
		return err
	}
	cluster.ResetMetrics()

	fmt.Fprintf(stdout, "plan         : %s over %d records (σ=%.3g, %s sampling)\n",
		planDesc(norm), p.n, opts.Sigma, p.sampler)

	if p.cycles > 0 {
		return runPlanWatch(stdout, cluster, q, opts, p, writeBatch)
	}

	res, err := q.Run(cluster, opts)
	if err != nil {
		return err
	}
	m := cluster.Metrics()
	printPlanResult(stdout, res)
	fmt.Fprintf(stdout, "I/O          : %d records / %.2f MB read\n",
		m.RecordsRead, float64(m.BytesRead)/(1<<20))
	return nil
}

// runPlanWatch maintains the plan under append+refresh cycles.
func runPlanWatch(stdout io.Writer, cluster *earl.Cluster, q *earl.Query, opts earl.Options, p planParams, writeBatch func(n int, seed uint64, first bool) error) error {
	w, err := q.Watch(cluster, opts)
	if err != nil {
		return err
	}
	defer w.Close()
	fmt.Fprintln(stdout, "first answer :")
	printPlanResult(stdout, w.Result())

	appendN := p.appendN
	if appendN <= 0 {
		appendN = p.n / 10
		if appendN < 1 {
			appendN = 1
		}
	}
	for cycle := 1; cycle <= p.cycles; cycle++ {
		if err := writeBatch(appendN, p.seed+uint64(100+cycle), false); err != nil {
			return err
		}
		before := cluster.Metrics()
		res, err := w.Refresh()
		if err != nil {
			return err
		}
		cost := cluster.Metrics().Sub(before)
		fmt.Fprintf(stdout, "refresh %-2d   : +%d records; read %d records / %.2f KB (maintained sample %d)\n",
			cycle, appendN, cost.RecordsRead, float64(cost.BytesRead)/(1<<10), w.SampleSize())
		printPlanResult(stdout, res)
	}
	return nil
}

// planDesc renders a normalized plan spec for display:
// "mean+p95 where (v > 10) derive (v * 2) by floor(v / 25)".
func planDesc(spec earl.PlanSpec) string {
	desc := strings.Join(spec.Stats, "+")
	if spec.Filter != "" {
		desc += " where " + spec.Filter
	}
	if spec.Derive != "" {
		desc += " derive " + spec.Derive
	}
	if spec.GroupBy != "" {
		desc += " by " + spec.GroupBy
	}
	return desc
}

// printPlanResult prints either shape of a plan result: one line per
// statistic for scalar plans, one line per group (sorted) for grouped
// ones.
func printPlanResult(stdout io.Writer, res *earl.PlanResult) {
	if res.Groups != nil {
		g := res.Groups
		fmt.Fprintf(stdout, "groups       : %d groups of %s, sample %d, %d iteration(s), converged=%v\n",
			len(g.Groups), g.Job, g.SampleSize, g.Iterations, g.Converged)
		names := make([]string, 0, len(g.Groups))
		for name := range g.Groups {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			gr := g.Groups[name]
			fmt.Fprintf(stdout, "  %-12s: %.6g (cv %.4f, sample %d)\n", name, gr.Estimate, gr.CV, gr.SampleSize)
		}
		return
	}
	for _, rep := range res.Reports {
		fmt.Fprintf(stdout, "%-12s : %.6g  (cv %.4f, 95%% CI [%.6g, %.6g], B=%d, sample %d, converged=%v)\n",
			rep.Job, rep.Estimate, rep.CV, rep.CILo, rep.CIHi, rep.B, rep.SampleSize, rep.Converged)
	}
}

// jobSetName joins the statistic names for display ("mean+p50+p95").
func jobSetName(jset []earl.Job) string {
	names := make([]string, len(jset))
	for i, j := range jset {
		names[i] = j.Name
	}
	return strings.Join(names, "+")
}

// relErr returns |est-exact|/|exact| (0 when exact is 0).
func relErr(est, exact float64) float64 {
	if exact == 0 {
		return 0
	}
	return math.Abs((est - exact) / exact)
}

// genValues materialises the synthetic numeric dataset for a job.
func genValues(jobName, dist string, n int, seed uint64) ([]float64, error) {
	if jobName == "proportion" {
		return workload.CategoricalSpec{P: 0.35, N: n, Seed: seed}.Generate()
	}
	return workload.NumericSpec{Dist: workload.Dist(dist), N: n, Seed: seed}.Generate()
}

// watchParams bundles the continuous-ingest demo knobs.
type watchParams struct {
	jobName, dist string
	n, cycles     int
	appendN       int
	seed          uint64
}

// runWatch demonstrates the maintained-query loop: one Watch, then
// repeated Append + Refresh cycles, printing the refresh cost next to
// what a from-scratch run over all data so far would read. killWait
// settles the -kill goroutine before anything is printed.
func runWatch(stdout io.Writer, cluster *earl.Cluster, job earl.Job, opts earl.Options, killWait func(), p watchParams) error {
	w, err := cluster.Watch(job, "/data", opts)
	killWait()
	if err != nil {
		return err
	}
	defer w.Close()
	first := w.Report()
	fmt.Fprintf(stdout, "watch        : %s over %d %s records (σ=%.3g)\n", job.Name, p.n, p.dist, opts.Sigma)
	fmt.Fprintf(stdout, "first answer : %.6g  (cv %.4f, sample %d)\n", first.Estimate, first.CV, first.SampleSize)

	appendN := p.appendN
	if appendN <= 0 {
		appendN = p.n / 10
		if appendN < 1 {
			appendN = 1
		}
	}
	total := p.n
	for cycle := 1; cycle <= p.cycles; cycle++ {
		batch, err := genValues(p.jobName, p.dist, appendN, p.seed+uint64(100+cycle))
		if err != nil {
			return err
		}
		if err := cluster.AppendValues("/data", batch); err != nil {
			return err
		}
		total += appendN
		before := cluster.Metrics()
		rep, err := w.Refresh()
		if err != nil {
			return err
		}
		cost := cluster.Metrics().Sub(before)
		fmt.Fprintf(stdout,
			"refresh %-2d   : +%d records → %.6g (cv %.4f, sample %d); read %d records / %.2f KB — vs %d records on disk\n",
			cycle, appendN, rep.Estimate, rep.CV, rep.SampleSize,
			cost.RecordsRead, float64(cost.BytesRead)/(1<<10), total)
	}

	exact, _, err := cluster.RunExact(job, "/data")
	if err != nil {
		return err
	}
	last := w.Report()
	fmt.Fprintf(stdout, "exact        : %.6g  (maintained answer off by %.3f%%)\n", exact, 100*relErr(last.Estimate, exact))
	return nil
}

// pickJob delegates to the engine-wide name table (kmeans is dispatched
// before this, it is not a Numeric job).
func pickJob(name string) (earl.Job, error) {
	return earl.JobByName(name)
}

func runKMeans(stdout io.Writer, cluster *earl.Cluster, n, k int, sigma float64, seed uint64) error {
	pts, truth, err := workload.MixtureSpec{
		K: k, Dim: 2, N: n, Spread: 2, Sep: 120, Seed: seed,
	}.Generate()
	if err != nil {
		return err
	}
	if err := cluster.WriteFile("/pts", workload.EncodePoints(pts)); err != nil {
		return err
	}
	cluster.ResetMetrics()
	rep, err := cluster.RunKMeans("/pts", earl.KMeans{K: k, Seed: seed + 1}, earl.KMeansOptions{Sigma: sigma, Seed: seed + 2})
	if err != nil {
		return err
	}
	errRel, err := jobs.CentroidError(rep.Centers, truth)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "early K-Means: k=%d over %d points, sample %d (%.2f%%), cost cv %.4f, converged=%v\n",
		k, n, rep.SampleSize, 100*float64(rep.SampleSize)/float64(n), rep.CV, rep.Converged)
	fmt.Fprintf(stdout, "centroid error vs generator truth: %.2f%% (paper bound: 5%%)\n", 100*errRel)
	for i, c := range rep.Centers {
		fmt.Fprintf(stdout, "  center %d: %v\n", i, c)
	}
	return nil
}
