package main

import (
	"strings"
	"testing"
)

// smoke runs earlctl's entry point with the given flags and returns its
// output; every path uses a small -n so the suite stays fast.
func smoke(t *testing.T, args ...string) string {
	t.Helper()
	var out, errw strings.Builder
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("earlctl %v: %v\noutput:\n%s%s", args, err, out.String(), errw.String())
	}
	return out.String()
}

func TestRunMeanPreMap(t *testing.T) {
	out := smoke(t, "-job", "mean", "-n", "40000", "-seed", "3")
	for _, want := range []string{"early result", "pre-map sampling", "exact"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunPostMapSampler is the regression test for the PR 1 fix: under
// -sampler post-map, earlctl must run the post-map job (once), not the
// pre-map job twice.
func TestRunPostMapSampler(t *testing.T) {
	out := smoke(t, "-job", "mean", "-n", "40000", "-sampler", "post-map", "-seed", "4")
	if !strings.Contains(out, "post-map sampling") {
		t.Fatalf("post-map run not reported as post-map:\n%s", out)
	}
	if strings.Contains(out, "pre-map sampling") {
		t.Fatalf("post-map run reported pre-map sampling:\n%s", out)
	}
}

func TestRunQuantileJob(t *testing.T) {
	out := smoke(t, "-job", "p99", "-dist", "zipf", "-n", "40000", "-seed", "5")
	if !strings.Contains(out, "quantile") && !strings.Contains(out, "p99") && !strings.Contains(out, "early result") {
		t.Fatalf("p99 output unexpected:\n%s", out)
	}
}

func TestRunWatchMode(t *testing.T) {
	out := smoke(t, "-job", "mean", "-n", "60000", "-watch", "2", "-append-n", "10000", "-seed", "6")
	if !strings.Contains(out, "first answer") {
		t.Fatalf("watch mode missing first answer:\n%s", out)
	}
	if !strings.Contains(out, "refresh 1") || !strings.Contains(out, "refresh 2") {
		t.Fatalf("watch mode missing refresh cycles:\n%s", out)
	}
	if !strings.Contains(out, "maintained answer off by") {
		t.Fatalf("watch mode missing exact comparison:\n%s", out)
	}
}

func TestRunParallelismFlag(t *testing.T) {
	smoke(t, "-job", "mean", "-n", "40000", "-parallelism", "1", "-seed", "7")
	smoke(t, "-job", "mean", "-n", "40000", "-parallelism", "4", "-seed", "7")
}

// TestRunKillNodes covers the -kill fault-tolerance path: the run must
// finish with an answer, and the kill goroutine's output must be fully
// flushed before the report (run waits for it, so the injected writer
// needs no locking).
func TestRunKillNodes(t *testing.T) {
	out := smoke(t, "-job", "mean", "-n", "120000", "-kill", "3,4", "-seed", "8")
	if !strings.Contains(out, "early result") {
		t.Fatalf("kill run produced no answer:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-job", "nope", "-n", "1000"},
		{"-sampler", "sideways", "-n", "1000"},
		{"-n", "0"},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		var out, errw strings.Builder
		if err := run(args, &out, &errw); err == nil {
			t.Fatalf("earlctl %v should fail", args)
		}
	}
}

// TestRunMultiJobSharedPass: repeated -job flags run as ONE shared-pass
// multi-statistic query with one report per statistic.
func TestRunMultiJobSharedPass(t *testing.T) {
	out := smoke(t, "-job", "mean", "-job", "p95", "-job", "count", "-n", "40000", "-seed", "9")
	for _, want := range []string{"one shared sampling pass", "mean", "quantile-0.95", "count"} {
		if !strings.Contains(out, want) {
			t.Fatalf("multi-job output missing %q:\n%s", want, out)
		}
	}
}

// TestRunMultiJobWatch: -watch with repeated -job maintains every
// statistic under one refresh per append.
func TestRunMultiJobWatch(t *testing.T) {
	out := smoke(t, "-job", "mean", "-job", "p99", "-n", "40000", "-watch", "2", "-append-n", "8000", "-seed", "10")
	for _, want := range []string{"first answer", "refresh 1", "refresh 2", "quantile-0.99", "maintained answer off by"} {
		if !strings.Contains(out, want) {
			t.Fatalf("multi-job watch output missing %q:\n%s", want, out)
		}
	}
}

// TestRunRejectsKMeansInMulti: kmeans is not a Numeric job and cannot
// join a shared pass.
func TestRunRejectsKMeansInMulti(t *testing.T) {
	var out, errw strings.Builder
	if err := run([]string{"-job", "kmeans", "-job", "mean", "-n", "1000"}, &out, &errw); err == nil {
		t.Fatal("kmeans in a multi-statistic query should fail")
	}
}

// TestRunPlanFilter: -filter lifts the run onto the query-plan layer;
// the estimate must reflect the filtered subpopulation (uniform values
// above 50 average near 75, far from the unfiltered 50).
func TestRunPlanFilter(t *testing.T) {
	out := smoke(t, "-job", "mean", "-filter", "v > 50", "-n", "40000", "-seed", "11")
	for _, want := range []string{"plan", "where v > 50", "mean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan output missing %q:\n%s", want, out)
		}
	}
}

// TestRunPlanGroupedByExpr: -by with a bucketing expression runs the
// grouped plan over plain numeric data.
func TestRunPlanGroupedByExpr(t *testing.T) {
	out := smoke(t, "-job", "mean", "-by", "floor(v / 25)", "-n", "40000", "-seed", "12")
	if !strings.Contains(out, "groups") || !strings.Contains(out, "by floor(v / 25)") {
		t.Fatalf("grouped plan output unexpected:\n%s", out)
	}
}

// TestRunPlanByKeyWatch: a degenerate "by key" plan generates KV data
// and stays maintainable under -watch.
func TestRunPlanByKeyWatch(t *testing.T) {
	out := smoke(t, "-job", "mean", "-by", "key", "-keys", "4", "-n", "30000", "-watch", "1", "-append-n", "6000", "-seed", "13")
	for _, want := range []string{"first answer", "refresh 1", "k0000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("by-key watch output missing %q:\n%s", want, out)
		}
	}
}

// TestRunPlanRejectsBadExpressions: malformed or mistyped expressions
// fail with positioned errors from the shared validation path.
func TestRunPlanRejectsBadExpressions(t *testing.T) {
	cases := [][]string{
		{"-job", "mean", "-filter", "v +", "-n", "1000"},            // malformed
		{"-job", "mean", "-filter", "v + 1", "-n", "1000"},          // not boolean
		{"-job", "mean", "-derive", "v > 1", "-n", "1000"},          // not numeric
		{"-job", "mean", "-job", "p95", "-by", "key", "-n", "1000"}, // grouped multi-stat
		{"-job", "mean", "-filter", "v > 1", "-kill", "2", "-n", "1000"},
		{"-job", "kmeans", "-filter", "v > 1", "-n", "1000"},
	}
	for _, args := range cases {
		var out, errw strings.Builder
		if err := run(args, &out, &errw); err == nil {
			t.Fatalf("earlctl %v should fail", args)
		}
	}
}
