package earl_test

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/earl"
	"repro/internal/stats"
	"repro/internal/workload"
)

// mustJob resolves a statistic by its spec name.
func mustJob(t *testing.T, name string) earl.Job {
	t.Helper()
	j, err := earl.JobByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// planCluster builds a cluster with uniform values at /data.
func planCluster(t *testing.T, n int, clusterSeed, dataSeed uint64) (*earl.Cluster, []float64) {
	t.Helper()
	cluster, err := earl.NewCluster(earl.ClusterConfig{BlockSize: 1 << 14, Seed: clusterSeed})
	if err != nil {
		t.Fatal(err)
	}
	xs, err := workload.NumericSpec{Dist: workload.Uniform, N: n, Seed: dataSeed}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WriteValues("/data", xs); err != nil {
		t.Fatal(err)
	}
	return cluster, xs
}

// TestQueryBuilderEndToEnd walks the fluent public surface: a filtered
// derived multi-statistic Run, a grouped Run, and a maintained Watch of
// each shape surviving an append+refresh.
func TestQueryBuilderEndToEnd(t *testing.T) {
	cluster, xs := planCluster(t, 60_000, 21, 22)
	opts := earl.Options{Sigma: 0.05, Seed: 23}

	res, err := earl.NewQuery("/data").
		Filter("v > 50").
		Derive("v * 2").
		Stats("mean", "p95").
		Run(cluster, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 2 || res.Groups != nil {
		t.Fatalf("scalar plan returned %+v", res)
	}
	// Uniform[0,100) above 50, doubled, averages near 150.
	if est := res.Reports[0].Estimate; est < 130 || est > 170 {
		t.Fatalf("filtered derived mean %.3f does not look like 2·(v|v>50)", est)
	}

	gres, err := earl.NewQuery("/data").GroupBy("floor(v / 50)").Stats("mean").Run(cluster, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gres.Groups == nil || len(gres.Groups.Groups) != 2 {
		t.Fatalf("grouped plan returned %+v", gres)
	}

	w, err := earl.NewQuery("/data").Filter("v > 50").Stats("mean").Watch(cluster, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Grouped() {
		t.Fatal("scalar plan watch reports grouped")
	}
	if err := cluster.AppendValues("/data", xs[:10_000]); err != nil {
		t.Fatal(err)
	}
	wres, err := w.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if w.Refreshes() != 1 || len(wres.Reports) != 1 {
		t.Fatalf("plan watch after one append: refreshes=%d result=%+v", w.Refreshes(), wres)
	}

	gw, err := earl.NewQuery("/data").GroupBy("floor(v / 50)").Stats("mean").Watch(cluster, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	if !gw.Grouped() {
		t.Fatal("grouped plan watch reports scalar")
	}
	if err := cluster.AppendValues("/data", xs[:10_000]); err != nil {
		t.Fatal(err)
	}
	gwres, err := gw.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if gwres.Groups == nil || len(gwres.Groups.Groups) != 2 {
		t.Fatalf("grouped plan watch refresh returned %+v", gwres)
	}
}

// TestDegeneratePlanMatchesLegacy pins the wrapper contract: a plan
// with no filter, no derive and no (or "key") group-by takes the
// historical code paths and reproduces Run/RunMulti/RunGrouped bit for
// bit, at every parallelism.
func TestDegeneratePlanMatchesLegacy(t *testing.T) {
	for _, par := range []int{1, 4, 0} {
		cluster, _ := planCluster(t, 60_000, 31, 32)
		opts := earl.Options{Sigma: 0.05, Seed: 33, Parallelism: par}

		jset := []earl.Job{earl.Mean(), mustJob(t, "p95")}
		want, err := cluster.RunMulti(jset, "/data", opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := earl.NewQuery("/data").Stats("mean", "p95").Run(cluster, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got.Reports) {
			t.Errorf("par=%d: degenerate plan differs from RunMulti:\n%+v\n%+v", par, want, got.Reports)
		}

		kv, err := workload.KVSpec{Keys: 4, N: 60_000, Seed: 34}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if err := cluster.WriteFile("/kv", workload.EncodeStrings(kv)); err != nil {
			t.Fatal(err)
		}
		gwant, err := cluster.RunGrouped(earl.Mean(), earl.TabKV, "/kv", opts)
		if err != nil {
			t.Fatal(err)
		}
		ggot, err := earl.NewQuery("/kv").GroupBy("key").Stats("mean").Run(cluster, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gwant, *ggot.Groups) {
			t.Errorf("par=%d: degenerate grouped plan differs from RunGrouped:\n%+v\n%+v", par, gwant, *ggot.Groups)
		}
	}
}

// TestPlanMatchesManualPrefilter is the pushdown golden: under the
// post-map sampler with one mapper and a forced plan (no SSABE), a
// filter+derive plan over raw data must produce the same sample — and
// hence bit-identical p-invariant statistics — as manually filtering
// and deriving the data up front and running the legacy engine on the
// result. The data uses exact quarter values and an exact affine
// derive, so transformed records round-trip the fixed-width encoding
// bit for bit. FractionP and EstTotalN are excluded: the plan
// denominates them in the ESTIMATED effective subpopulation, the
// manual run in the prefiltered file's own estimate.
func TestPlanMatchesManualPrefilter(t *testing.T) {
	const n = 50_000
	raw := make([]float64, n)
	pre := make([]float64, 0, n)
	for k := range raw {
		v := float64(k%200) / 4 // 0, 0.25, …, 49.75: exact in the line format
		raw[k] = v
		if v < 25 {
			pre = append(pre, v*2+1) // derive, exact in float64
		}
	}
	jset := []earl.Job{earl.Mean(), mustJob(t, "p50"), mustJob(t, "p95")}

	for _, par := range []int{1, 4, 0} {
		opts := earl.Options{
			Sigma:       0.2,
			Sampler:     earl.PostMapSampling,
			NumMappers:  1,
			Seed:        41,
			ForceB:      64,
			ForceN:      400,
			Parallelism: par,
		}
		cluster, err := earl.NewCluster(earl.ClusterConfig{BlockSize: 1 << 14, Seed: 40})
		if err != nil {
			t.Fatal(err)
		}
		if err := cluster.WriteValues("/raw", raw); err != nil {
			t.Fatal(err)
		}
		if err := cluster.WriteValues("/pre", pre); err != nil {
			t.Fatal(err)
		}

		want, err := cluster.RunMulti(jset, "/pre", opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := earl.NewQuery("/raw").
			Filter("v < 25").
			Derive("v * 2 + 1").
			Stats("mean", "p50", "p95").
			Run(cluster, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Reports) != len(want) {
			t.Fatalf("par=%d: %d plan reports vs %d manual", par, len(got.Reports), len(want))
		}
		for i, w := range want {
			g := got.Reports[i]
			// Blank out the population-denominated fields before comparing.
			w.FractionP, g.FractionP = 0, 0
			w.EstTotalN, g.EstTotalN = 0, 0
			if !reflect.DeepEqual(w, g) {
				t.Errorf("par=%d %s: pushdown differs from manual prefilter:\nmanual: %+v\nplan:   %+v",
					par, w.Job, w, g)
			}
		}
	}
}

// TestPlanSpecValidationAtPublicSurface: malformed or mistyped
// expressions fail Run with positioned errors before any engine work.
func TestPlanSpecValidationAtPublicSurface(t *testing.T) {
	cluster, _ := planCluster(t, 4_000, 51, 52)
	for _, q := range []*earl.Query{
		earl.NewQuery("/data").Filter("v +"),
		earl.NewQuery("/data").Filter("v + 1"),                     // filter must be boolean
		earl.NewQuery("/data").Derive("v > 1"),                     // derive must be numeric
		earl.NewQuery("/data").Filter("nope(v)"),                   // unknown function
		earl.NewQuery("/data").GroupBy("key").Stats("mean", "p95"), // grouped multi-stat
		earl.NewQuery(""),
	} {
		if _, err := q.Run(cluster, earl.Options{}); err == nil {
			t.Errorf("spec %+v accepted", q.Spec())
		}
	}
	if _, err := earl.NewQuery("/data").Filter("v +").Run(cluster, earl.Options{}); err == nil ||
		!strings.Contains(err.Error(), "column") {
		t.Errorf("malformed expression error lacks a position: %v", err)
	}
}

// TestFilteredConfidenceIntervalCalibration is the statistical
// acceptance test for filtered-subpopulation semantics: with SSABE
// pilots running post-filter, the reported 95% CI must cover the TRUE
// statistic of the filtered subpopulation in ≥90% of seeded runs, per
// statistic. Truth is computed over records passing the filter, not
// the raw population — a plan that sized or corrected against raw N
// would systematically miss it.
func TestFilteredConfidenceIntervalCalibration(t *testing.T) {
	const (
		seedsPerJob = 70
		records     = 20_000
		minCoverage = 0.90
		filterExpr  = "v > 30"
	)
	sub := func(xs []float64) []float64 {
		kept := make([]float64, 0, len(xs))
		for _, v := range xs {
			if v > 30 {
				kept = append(kept, v)
			}
		}
		return kept
	}
	cases := []struct {
		name  string
		truth func(kept []float64) float64
	}{
		{"mean", func(kept []float64) float64 { m, _ := stats.Mean(kept); return m }},
		{"sum", stats.Sum},
		{"p50", func(kept []float64) float64 { q, _ := stats.Quantile(kept, 0.5); return q }},
	}

	for _, cj := range cases {
		cj := cj
		t.Run(cj.name, func(t *testing.T) {
			t.Parallel()
			var covered, sampledRuns atomic.Int64
			var mu sync.Mutex
			var firstErr error
			fail := func(err error) {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			var wg sync.WaitGroup
			sem := make(chan struct{}, 8)
			for seed := 0; seed < seedsPerJob; seed++ {
				wg.Add(1)
				sem <- struct{}{}
				go func(seed uint64) {
					defer wg.Done()
					defer func() { <-sem }()
					cluster, err := earl.NewCluster(earl.ClusterConfig{BlockSize: 1 << 13, Seed: seed})
					if err != nil {
						fail(err)
						return
					}
					xs, err := workload.NumericSpec{Dist: workload.Uniform, N: records, Seed: 1000 + seed}.Generate()
					if err != nil {
						fail(err)
						return
					}
					if err := cluster.WriteValues("/data", xs); err != nil {
						fail(err)
						return
					}
					res, err := earl.NewQuery("/data").
						Filter(filterExpr).
						Stats(cj.name).
						Run(cluster, earl.Options{
							Sigma:      0.05,
							Confidence: 0.95,
							Seed:       2000 + seed,
							ForceB:     150,
							ForceN:     800,
						})
					if err != nil {
						fail(err)
						return
					}
					rep := res.Reports[0]
					if rep.UsedFull {
						return // no interval to calibrate
					}
					sampledRuns.Add(1)
					truth := cj.truth(sub(xs))
					if math.IsNaN(truth) {
						fail(errors.New("degenerate filtered truth"))
						return
					}
					if rep.CILo <= truth && truth <= rep.CIHi {
						covered.Add(1)
					}
				}(uint64(seed))
			}
			wg.Wait()
			if firstErr != nil {
				t.Fatal(firstErr)
			}
			runs := sampledRuns.Load()
			if runs < seedsPerJob*9/10 {
				t.Fatalf("only %d of %d runs took the sampled path", runs, seedsPerJob)
			}
			coverage := float64(covered.Load()) / float64(runs)
			t.Logf("%s over %s: 95%% CI covered subpopulation truth in %d/%d runs (%.1f%%)",
				cj.name, filterExpr, covered.Load(), runs, 100*coverage)
			if coverage < minCoverage {
				t.Fatalf("%s: coverage %.1f%% < %.0f%% — filtered-subpopulation CI is miscalibrated",
					cj.name, 100*coverage, 100*minCoverage)
			}
		})
	}
}
