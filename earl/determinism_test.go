package earl_test

import (
	"reflect"
	"testing"

	"repro/earl"
	"repro/internal/workload"
)

// runOnce executes one fixed-seed end-to-end run on a fresh cluster.
func runOnce(t *testing.T, par int, sampler earl.SamplerKind) earl.Report {
	t.Helper()
	cluster, err := earl.NewCluster(earl.ClusterConfig{BlockSize: 1 << 14, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: 90_000, Seed: 42}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WriteValues("/data", xs); err != nil {
		t.Fatal(err)
	}
	rep, err := cluster.Run(earl.Mean(), "/data", earl.Options{
		Sigma: 0.05, Seed: 43, Parallelism: par, Sampler: sampler,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestEndToEndDeterminismAcrossParallelism pins the engine-wide seeding
// contract at the public API: a fixed-seed Report is bit-identical at
// any Parallelism (1, 4, and 0 = GOMAXPROCS), for both samplers. The
// pre-existing determinism tests stop at the bootstrap/delta layer; this
// one covers the full pipelined driver, whose reducer canonicalises the
// (scheduler-dependent) arrival order before growing resamples.
func TestEndToEndDeterminismAcrossParallelism(t *testing.T) {
	for _, sampler := range []earl.SamplerKind{earl.PreMapSampling, earl.PostMapSampling} {
		golden := runOnce(t, 1, sampler)
		for _, par := range []int{4, 0} {
			got := runOnce(t, par, sampler)
			if !reflect.DeepEqual(golden, got) {
				t.Errorf("%s: Parallelism=%d report differs from sequential:\n  p=1: %+v\n  p=%d: %+v",
					sampler, par, golden, par, got)
			}
		}
	}
}

// TestEndToEndDeterminismAcrossRepeats guards against scheduling
// nondeterminism at a fixed parallelism: three identical runs must agree
// bit for bit.
func TestEndToEndDeterminismAcrossRepeats(t *testing.T) {
	golden := runOnce(t, 0, earl.PreMapSampling)
	for i := 0; i < 2; i++ {
		if got := runOnce(t, 0, earl.PreMapSampling); !reflect.DeepEqual(golden, got) {
			t.Fatalf("repeat %d differs:\n  first: %+v\n  got:   %+v", i, golden, got)
		}
	}
}
