package earl_test

import (
	"fmt"
	"math"
	"testing"

	"repro/earl"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestPublicWatchAppendRefresh drives the continuous-ingest surface
// through the public API: Watch, Append, Refresh, Close.
func TestPublicWatchAppendRefresh(t *testing.T) {
	cluster, err := earl.NewCluster(earl.ClusterConfig{BlockSize: 1 << 14, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	base, err := workload.NumericSpec{Dist: workload.Uniform, N: 120_000, Seed: 82}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WriteValues("/stream", base); err != nil {
		t.Fatal(err)
	}
	w, err := cluster.Watch(earl.Mean(), "/stream", earl.Options{Sigma: 0.05, Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Report().UsedFull {
		t.Fatalf("watch fell back to exact: %+v", w.Report())
	}

	delta, err := workload.NumericSpec{Dist: workload.Uniform, N: 40_000, Seed: 84}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.AppendValues("/stream", delta); err != nil {
		t.Fatal(err)
	}
	before := cluster.Metrics()
	rep, err := w.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	cost := cluster.Metrics().Sub(before)
	if cost.Refreshes != 1 || w.Refreshes() != 1 {
		t.Fatalf("refresh accounting: metrics %d, handle %d", cost.Refreshes, w.Refreshes())
	}
	if cost.JobStartups != 0 {
		t.Fatalf("a refresh must not submit a new MR job (startup overhead): %+v", cost)
	}
	all := append(append([]float64(nil), base...), delta...)
	truth, _ := stats.Mean(all)
	if rel := math.Abs(rep.Estimate-truth) / truth; rel > 0.1 {
		t.Fatalf("refreshed estimate %v vs truth %v", rep.Estimate, truth)
	}
	if rep.SampleSize != w.SampleSize() {
		t.Fatalf("sample size mismatch: %d vs %d", rep.SampleSize, w.SampleSize())
	}
	// o(N): far fewer records touched than the concatenated file holds.
	if cost.RecordsRead > int64(len(all))/20 {
		t.Fatalf("refresh read %d records of %d", cost.RecordsRead, len(all))
	}
}

// TestPublicWatchGrouped drives the grouped variant end to end.
func TestPublicWatchGrouped(t *testing.T) {
	cluster, err := earl.NewCluster(earl.ClusterConfig{BlockSize: 1 << 14, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	enc := func(key string, n int, seed uint64, shift float64) []byte {
		xs, err := workload.NumericSpec{Dist: workload.Uniform, N: n, Seed: seed}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		var buf []byte
		for _, x := range xs {
			buf = append(buf, []byte(fmt.Sprintf("%s\t%012.6f\n", key, x+shift))...)
		}
		return buf
	}
	data := append(enc("us", 25_000, 92, 0), enc("eu", 25_000, 93, 50)...)
	if err := cluster.WriteFile("/kv", data); err != nil {
		t.Fatal(err)
	}
	w, err := cluster.WatchGrouped(earl.Mean(), earl.TabKV, "/kv", earl.Options{Sigma: 0.08, Seed: 94})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := len(w.Report().Groups); got != 2 {
		t.Fatalf("initial groups = %d", got)
	}
	if err := cluster.Append("/kv", enc("apac", 25_000, 95, 100)); err != nil {
		t.Fatal(err)
	}
	rep, err := w.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Groups); got != 3 {
		t.Fatalf("groups after refresh = %d (%v)", got, rep.Groups)
	}
	if est := rep.Groups["apac"].Estimate; est < 100 || est > 200 {
		t.Fatalf("apac estimate %v implausible (uniform(0,100)+100)", est)
	}
}
