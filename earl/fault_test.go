package earl_test

import (
	"math"
	"testing"

	"repro/earl"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestKillNodeMidRunBothSamplers pins the §3.4 behaviour that until now
// only an example exercised: losing machines mid-run (their DataNode
// and task slots together) must not abort the job — it finishes on
// surviving data and still lands within tolerance of a healthy run's
// estimate, under both sampling algorithms.
func TestKillNodeMidRunBothSamplers(t *testing.T) {
	xs, err := workload.NumericSpec{Dist: workload.Uniform, N: 200_000, Seed: 71}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := stats.Mean(xs)

	for _, sampler := range []earl.SamplerKind{earl.PreMapSampling, earl.PostMapSampling} {
		sampler := sampler
		t.Run(string(sampler), func(t *testing.T) {
			healthy := faultRun(t, xs, sampler, nil)
			if !healthy.Converged {
				t.Fatalf("healthy run did not converge: %+v", healthy)
			}

			wounded := faultRun(t, xs, sampler, []int{3, 4})
			// The run must deliver an estimate with an error figure, and
			// stay within tolerance of both the healthy run and the truth.
			if wounded.CV <= 0 {
				t.Fatalf("no error estimate after node loss: %+v", wounded)
			}
			if rel := math.Abs(wounded.Estimate-healthy.Estimate) / healthy.Estimate; rel > 0.15 {
				t.Fatalf("estimate after failures %v vs healthy %v (rel %v)", wounded.Estimate, healthy.Estimate, rel)
			}
			if rel := math.Abs(wounded.Estimate-truth) / truth; rel > 0.15 {
				t.Fatalf("estimate after failures %v vs truth %v (rel %v)", wounded.Estimate, truth, rel)
			}
		})
	}
}

// faultRun executes one run, killing the given nodes once the job is
// demonstrably underway (records flowing through mappers).
func faultRun(t *testing.T, xs []float64, sampler earl.SamplerKind, kill []int) earl.Report {
	t.Helper()
	cluster, err := earl.NewCluster(earl.ClusterConfig{BlockSize: 1 << 14, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WriteValues("/data", xs); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	if len(kill) > 0 {
		go func() {
			defer close(done)
			for cluster.Metrics().RecordsMapped < 100 {
			}
			for _, id := range kill {
				if err := cluster.KillNode(id); err != nil {
					t.Errorf("kill node %d: %v", id, err)
				}
			}
		}()
	} else {
		close(done)
	}
	rep, err := cluster.Run(earl.Mean(), "/data", earl.Options{
		Sigma: 0.05, Seed: 73, Sampler: sampler,
	})
	<-done
	if err != nil {
		t.Fatalf("run with node loss should still answer (%s): %v", sampler, err)
	}
	return rep
}
