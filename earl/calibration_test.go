package earl_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/earl"
	"repro/internal/stats"
	"repro/internal/workload"
)

// calibrationJob describes one statistic under calibration: how to run
// it and what the true value of a dataset is.
type calibrationJob struct {
	name  string
	dist  workload.Dist
	job   func() (earl.Job, error)
	truth func(xs []float64) float64
}

// TestConfidenceIntervalCalibration is an end-to-end statistical check:
// across ≥200 independent seeded runs, the reported 95% confidence
// interval must cover the true value in at least 90% of runs, per
// statistic. A silently miscalibrated error estimate — an uncorrected
// interval around a corrected SUM, a resampling bug that shrinks the
// bootstrap distribution — fails this test while every point-estimate
// tolerance test keeps passing.
func TestConfidenceIntervalCalibration(t *testing.T) {
	const (
		seedsPerJob = 70 // 3 jobs × 70 = 210 end-to-end runs
		records     = 20_000
		minCoverage = 0.90
	)
	jobs := []calibrationJob{
		{
			name: "mean", dist: workload.Uniform,
			job:   func() (earl.Job, error) { return earl.Mean(), nil },
			truth: func(xs []float64) float64 { m, _ := stats.Mean(xs); return m },
		},
		{
			name: "sum", dist: workload.Uniform,
			job:   func() (earl.Job, error) { return earl.Sum(), nil },
			truth: stats.Sum,
		},
		{
			name: "quantile-0.5", dist: workload.Gaussian,
			job:   func() (earl.Job, error) { return earl.Quantile(0.5) },
			truth: func(xs []float64) float64 { q, _ := stats.Quantile(xs, 0.5); return q },
		},
	}

	for _, cj := range jobs {
		cj := cj
		t.Run(cj.name, func(t *testing.T) {
			t.Parallel()
			var covered, sampledRuns atomic.Int64
			var mu sync.Mutex
			var firstErr error
			fail := func(err error) {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			var wg sync.WaitGroup
			sem := make(chan struct{}, 8)
			for seed := 0; seed < seedsPerJob; seed++ {
				wg.Add(1)
				sem <- struct{}{}
				go func(seed uint64) {
					defer wg.Done()
					defer func() { <-sem }()
					job, err := cj.job()
					if err != nil {
						fail(err)
						return
					}
					cluster, err := earl.NewCluster(earl.ClusterConfig{BlockSize: 1 << 13, Seed: seed})
					if err != nil {
						fail(err)
						return
					}
					xs, err := workload.NumericSpec{Dist: cj.dist, N: records, Seed: 1000 + seed}.Generate()
					if err != nil {
						fail(err)
						return
					}
					if err := cluster.WriteValues("/data", xs); err != nil {
						fail(err)
						return
					}
					rep, err := cluster.Run(job, "/data", earl.Options{
						Sigma:      0.05,
						Confidence: 0.95,
						Seed:       2000 + seed,
						ForceB:     150, // fixed plan: every run exercises the sampled path
						ForceN:     800, // (B this large keeps the percentile tails stable)
					})
					if err != nil {
						fail(err)
						return
					}
					if rep.UsedFull {
						return // no interval to calibrate
					}
					sampledRuns.Add(1)
					truth := cj.truth(xs)
					if rep.CILo <= truth && truth <= rep.CIHi {
						covered.Add(1)
					}
				}(uint64(seed))
			}
			wg.Wait()
			if firstErr != nil {
				t.Fatal(firstErr)
			}
			runs := sampledRuns.Load()
			if runs < seedsPerJob*9/10 {
				t.Fatalf("only %d of %d runs took the sampled path", runs, seedsPerJob)
			}
			coverage := float64(covered.Load()) / float64(runs)
			t.Logf("%s: 95%% CI covered truth in %d/%d runs (%.1f%%)", cj.name, covered.Load(), runs, 100*coverage)
			if coverage < minCoverage {
				t.Fatalf("%s: coverage %.1f%% < %.0f%% — the reported confidence interval is miscalibrated",
					cj.name, 100*coverage, 100*minCoverage)
			}
		})
	}
}
