package earl_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/earl"
	"repro/internal/workload"
)

// TestConcurrentClusterStress exercises the Cluster's concurrency
// contract under the race detector: N goroutines mix Run, Watch/Refresh
// and Append against one Cluster. Before runs were namespaced by run id,
// concurrent runs of the same job shared their reducer error files and
// read each other's cv/generation feedback — mis-terminating with tiny
// samples — and this test is the regression guard for that fix.
func TestConcurrentClusterStress(t *testing.T) {
	cluster, err := earl.NewCluster(earl.ClusterConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: 60_000, Seed: 2}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WriteValues("/stress/run", xs); err != nil {
		t.Fatal(err)
	}
	ys, err := workload.NumericSpec{Dist: workload.Uniform, N: 60_000, Seed: 3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WriteValues("/stress/watch", ys); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Three goroutines running the SAME job name over the same path —
	// the exact collision the per-run error-file namespace fixes.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				rep, err := cluster.Run(earl.Mean(), "/stress/run",
					earl.Options{Sigma: 0.05, Seed: uint64(100 + 10*g + i)})
				if err != nil {
					errs <- fmt.Errorf("run[%d,%d]: %w", g, i, err)
					return
				}
				if math.Abs(rep.Estimate-50) > 25 {
					errs <- fmt.Errorf("run[%d,%d]: estimate %g wildly off (cross-run interference?)", g, i, rep.Estimate)
					return
				}
			}
		}(g)
	}

	// Two watch goroutines over the appended file, refreshing repeatedly.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w, err := cluster.Watch(earl.Mean(), "/stress/watch",
				earl.Options{Sigma: 0.08, Seed: uint64(200 + g)})
			if err != nil {
				errs <- fmt.Errorf("watch[%d]: %w", g, err)
				return
			}
			defer w.Close()
			for i := 0; i < 4; i++ {
				if _, err := w.Refresh(); err != nil {
					errs <- fmt.Errorf("watch[%d] refresh %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}

	// One appender feeding the watched file while everything else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			delta, err := workload.NumericSpec{Dist: workload.Uniform, N: 10_000, Seed: uint64(300 + i)}.Generate()
			if err != nil {
				errs <- err
				return
			}
			if err := cluster.AppendValues("/stress/watch", delta); err != nil {
				errs <- fmt.Errorf("append %d: %w", i, err)
				return
			}
		}
	}()

	// One grouped run in the mix (its own error-file namespace too).
	wg.Add(1)
	go func() {
		defer wg.Done()
		kv := make([]byte, 0, 1<<16)
		for i := 0; i < 6_000; i++ {
			kv = append(kv, fmt.Sprintf("g%d\t%d\n", i%3, 10+i%7)...)
		}
		if err := cluster.WriteFile("/stress/kv", kv); err != nil {
			errs <- err
			return
		}
		if _, err := cluster.RunGrouped(earl.Mean(), earl.TabKV, "/stress/kv",
			earl.Options{Sigma: 0.1, Seed: 400}); err != nil {
			errs <- fmt.Errorf("grouped: %w", err)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentSameJobMatchesSolo pins down the feedback-file isolation
// more sharply: a fixed-seed Run executed while an identical-job run is
// in flight must produce the same report as the same Run executed alone
// on a fresh cluster. With a shared error-file prefix the concurrent run
// could adopt the other's generation counter and terminate on the wrong
// schedule.
func TestConcurrentSameJobMatchesSolo(t *testing.T) {
	build := func() *earl.Cluster {
		cluster, err := earl.NewCluster(earl.ClusterConfig{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: 50_000, Seed: 7}.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if err := cluster.WriteValues("/iso/data", xs); err != nil {
			t.Fatal(err)
		}
		return cluster
	}
	opts := earl.Options{Sigma: 0.05, Seed: 42, Parallelism: 1}

	solo := build()
	want, err := solo.Run(earl.Mean(), "/iso/data", opts)
	if err != nil {
		t.Fatal(err)
	}

	shared := build()
	var wg sync.WaitGroup
	var got earl.Report
	var gotErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		got, gotErr = shared.Run(earl.Mean(), "/iso/data", opts)
	}()
	go func() {
		defer wg.Done()
		// Same job name, different seed: would share the old error prefix.
		_, _ = shared.Run(earl.Mean(), "/iso/data", earl.Options{Sigma: 0.05, Seed: 99, Parallelism: 1})
	}()
	wg.Wait()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got.Estimate != want.Estimate || got.SampleSize != want.SampleSize || got.B != want.B {
		t.Fatalf("concurrent run diverged from solo run:\nsolo      %+v\nconcurrent %+v", want, got)
	}
}
