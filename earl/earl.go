// Package earl is the public API of this EARL reproduction — the Early
// Accurate Result Library of Laptev, Zeng & Zaniolo, "Early Accurate
// Results for Advanced Analytics on MapReduce" (PVLDB 5(10), 2012) —
// rebuilt in Go on a simulated Hadoop substrate.
//
// EARL answers analytics queries on massive data sets early: it samples,
// runs the user's job on B bootstrap resamples, estimates the error of
// the approximate answer, and expands the sample until a user-specified
// error bound σ is met — usually touching a tiny fraction of the data.
//
// Quickstart:
//
//	cluster, _ := earl.NewCluster(earl.ClusterConfig{})
//	_ = cluster.WriteFile("/data", workloadBytes) // one number per line
//	rep, _ := cluster.Run(earl.Mean(), "/data", earl.Options{Sigma: 0.05})
//	fmt.Printf("mean ≈ %.3f ± %.1f%% (from %d of ~%d records)\n",
//		rep.Estimate, 100*rep.CV, rep.SampleSize, rep.EstTotalN)
//
// Resampling — EARL's CPU hot path — runs on a parallel bootstrap
// engine: Options.Parallelism sets the worker-pool size that SSABE's
// phase-2 error-curve resampling and the reducer's per-delta-batch
// resample updates are sharded across (0 means runtime.GOMAXPROCS, 1
// forces the sequential path; SSABE's phase 1 stays sequential — it
// adds one resample at a time and early-stops on stability). The
// engine's reproducible-seeding contract: every shard of work owns an
// rng stream derived only from the run's Seed and the shard index —
// never from worker identity or scheduling — so a run with a fixed Seed
// produces bit-identical results at any Parallelism.
//
// The heavy lifting lives in internal packages: internal/dfs (simulated
// HDFS), internal/mr (the MapReduce engine with EARL's pipelining and
// incremental-reduce extensions), internal/sampling (pre-map/post-map
// samplers), internal/bootstrap + internal/delta (resampling and its
// optimizations), internal/aes (accuracy estimation and SSABE), and
// internal/core (the driver). This package re-exports the surface a
// downstream user needs.
package earl

import (
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/jobs"
	"repro/internal/live"
	"repro/internal/simcost"
	"repro/internal/workload"
)

// Options re-exports core.Options: the knobs of one EARL run (σ, τ,
// sampler choice, expansion cap, …).
type Options = core.Options

// Report re-exports core.Report: the early result with its achieved
// error, confidence interval and provenance.
type Report = core.Report

// Job re-exports jobs.Numeric: a scalar statistic expressed through the
// incremental reduce API.
type Job = jobs.Numeric

// SamplerKind selects the sampling stage implementation (§3.3).
type SamplerKind = core.SamplerKind

// Sampler kinds (§3.3 of the paper).
const (
	PreMapSampling  = core.PreMapSampling
	PostMapSampling = core.PostMapSampling
)

// Built-in jobs.
var (
	// Mean is the arithmetic-mean job (Fig. 5's workload).
	Mean = jobs.Mean
	// Median is the median job (Fig. 6's workload).
	Median = jobs.Median
	// Sum is the total, corrected by 1/p when sampled.
	Sum = jobs.Sum
	// Count is the record count, corrected by 1/p.
	Count = jobs.Count
	// Variance is the unbiased sample variance.
	Variance = jobs.Variance
	// StdDev is the sample standard deviation.
	StdDev = jobs.StdDev
	// Proportion estimates the share of 1-records in 0/1 data
	// (Appendix A's categorical path).
	Proportion = jobs.Proportion
)

// Quantile builds the q-th quantile job (0 < q < 1).
func Quantile(q float64) (Job, error) { return jobs.Quantile(q) }

// JobByName resolves a statistic by its user-facing name (mean, sum,
// count, median, variance, stddev, proportion, pNN percentiles, q0.NN
// quantiles) — the shared table every front end uses.
func JobByName(name string) (Job, error) { return jobs.ByName(name) }

// ClusterConfig shapes the simulated deployment.
type ClusterConfig = core.EnvConfig

// Cluster is a simulated Hadoop deployment: a replicated DFS plus a
// MapReduce engine with EARL's extensions. All EARL runs execute
// against a Cluster.
//
// Concurrency contract: a Cluster is safe for concurrent use. Any mix
// of Run, RunMulti, RunGrouped, Watch, WatchMulti, WatchGrouped,
// Append, WriteFile and
// metrics calls may proceed from multiple goroutines against the same
// Cluster — the DFS and engine are internally synchronized, and every
// run namespaces its reducer→mapper feedback files by a unique run id,
// so concurrent runs (even of the same job over the same path) never
// observe each other's expansion state. Each Watch/GroupedWatch handle
// additionally serialises its own Refresh calls, so a handle may be
// shared between goroutines; an Append concurrent with a Refresh is
// ordered by the DFS — the refresh either sees the appended blocks now
// or picks them up on its next call.
//
// Rewrites are isolated, not forbidden: a WriteFile over a path with
// an open Watch is one journaled DFS commit, every Refresh reads
// through a snapshot pinned at a single commit point, and a refresh
// that observes the new write generation rebuilds the maintained state
// from scratch — so each report reflects exactly one version of the
// file (pre- or post-rewrite), never a blend. The cost counters in Metrics are
// cluster-wide aggregates: under concurrent runs, per-run attribution
// requires snapshot deltas taken by the caller (see internal/serve for
// the caveats). KillNode/ReviveNode are also safe to call mid-run —
// that is exactly the §3.4 fault-tolerance path.
type Cluster struct {
	env *core.Env
}

// NewCluster builds a cluster (default: the paper's 5 nodes).
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	env, err := core.NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{env: env}, nil
}

// WriteFile stores data in the cluster's DFS.
func (c *Cluster) WriteFile(path string, data []byte) error {
	return c.env.FS.WriteFile(path, data)
}

// WriteValues encodes numeric values one-per-line in a fixed-width
// format and stores them. Fixed-width records make pre-map sampling
// exactly uniform (variable-width lines are sampled in proportion to
// their length — the mild bias §3.3 of the paper accepts). Use WriteFile
// to store pre-encoded data in any layout.
func (c *Cluster) WriteValues(path string, values []float64) error {
	return c.env.FS.WriteFile(path, workload.EncodeLinesFixed(values))
}

// Append adds record-aligned data (it must end with a newline) to the
// end of path as fresh, replicated blocks. Existing blocks and splits
// are untouched, so maintained queries (Watch) can process only the
// appended region on their next Refresh.
func (c *Cluster) Append(path string, data []byte) error {
	return c.env.FS.Append(path, data)
}

// AppendValues appends numeric values in the same fixed-width encoding
// as WriteValues.
func (c *Cluster) AppendValues(path string, values []float64) error {
	return c.env.FS.Append(path, workload.EncodeLinesFixed(values))
}

// CompactStats re-exports dfs.CompactStats: what a Compact found and did.
type CompactStats = dfs.CompactStats

// Compact rebuilds path's persistent columnar sidecar to full coverage:
// it backfills files ingested without one and re-encodes the uncovered
// tail left behind by small appends, so subsequent cold reads skip the
// text decode. The data file itself is untouched. A file whose records
// the columnar validators reject returns the decode error and keeps no
// sidecar.
func (c *Cluster) Compact(path string) (CompactStats, error) {
	return c.env.FS.Compact(path)
}

// JournalStats re-exports dfs.JournalStats: the commit-journal health
// snapshot (committed records, journal bytes, active snapshot pins,
// and crash-recovery replay stats when the cluster was recovered).
type JournalStats = dfs.JournalStats

// JournalStats snapshots the DFS commit journal's counters.
func (c *Cluster) JournalStats() JournalStats { return c.env.FS.JournalStats() }

// JournalBytes returns a copy of the cluster's commit-journal image —
// what a durable deployment would have on disk, including any torn
// final record an injected crash left behind. RecoverCluster replays
// it.
func (c *Cluster) JournalBytes() []byte { return c.env.FS.JournalBytes() }

// FaultPlan re-exports dfs.FaultPlan: the seeded, deterministic
// fault-injection layer (transient replica read errors, slow replicas,
// crash at a chosen commit point with an optionally torn final write).
type FaultPlan = dfs.FaultPlan

// SetFaultPlan installs a fault-injection plan on the cluster's DFS
// (nil clears it). Injected faults are deterministic in the plan's
// Seed, so a fixed-seed run answers bit-identically with transient
// faults on or off — the chaos acceptance suite pins exactly that.
func (c *Cluster) SetFaultPlan(plan *FaultPlan) { c.env.FS.SetFaultPlan(plan) }

// RecoverStats re-exports dfs.RecoverStats: what a journal replay
// found and rebuilt.
type RecoverStats = dfs.RecoverStats

// RecoverCluster rebuilds a cluster from a commit-journal image
// (JournalBytes of a previous — typically crashed — cluster). Replay
// funnels every durable commit through the live ingest path, so with
// the same cfg the recovered cluster answers queries bit-identically
// to the original at the replayed commit point. A torn final record is
// truncated cleanly; interior corruption is refused.
func RecoverCluster(cfg ClusterConfig, image []byte) (*Cluster, RecoverStats, error) {
	env, rst, err := core.RecoverEnv(cfg, image)
	if err != nil {
		return nil, rst, err
	}
	return &Cluster{env: env}, rst, nil
}

// Run executes job over path with early accurate results.
func (c *Cluster) Run(job Job, path string, opts Options) (Report, error) {
	return core.Run(c.env, job, path, opts)
}

// RunMulti executes several statistics over path as ONE shared-pass run:
// one pilot, one SSABE plan per statistic, one sample sized at the
// largest planned n, and one pass over the drawn records feeding every
// statistic's resample set. The input is read once regardless of how
// many statistics ride the pass — a dashboard asking for
// mean+p50+p95+count of the same column costs the IO of its most
// demanding statistic, not four separate scans. One Report per
// statistic, in job order.
func (c *Cluster) RunMulti(jset []Job, path string, opts Options) ([]Report, error) {
	return core.RunMulti(c.env, jset, path, opts)
}

// RunExact executes job exactly over every record (the stock-Hadoop
// baseline); it returns the result and the records processed.
func (c *Cluster) RunExact(job Job, path string) (float64, int, error) {
	return core.RunExactJob(c.env, job, path, 0)
}

// KMeans configures the clustering job.
type KMeans = jobs.KMeans

// KMeansOptions tunes an early K-Means run.
type KMeansOptions = core.KMeansOptions

// KMeansReport is the early K-Means outcome.
type KMeansReport = core.KMeansReport

// RunKMeans clusters the comma-separated point file at path early, with
// a bootstrap error bound on the clustering cost (§6.3).
func (c *Cluster) RunKMeans(path string, k KMeans, opts KMeansOptions) (KMeansReport, error) {
	return core.RunKMeans(c.env, path, k, opts)
}

// KillNode fails one simulated machine (its DataNode and task slots) —
// EARL keeps answering through failures (§3.4).
func (c *Cluster) KillNode(id int) error { return c.env.KillNode(id) }

// ReviveNode brings a machine back.
func (c *Cluster) ReviveNode(id int) error { return c.env.ReviveNode(id) }

// Metrics exposes the cluster's cost counters.
func (c *Cluster) Metrics() simcost.Snapshot { return c.env.Metrics.Snapshot() }

// ResetMetrics zeroes the cost counters (between experiments).
func (c *Cluster) ResetMetrics() { c.env.Metrics.Reset() }

// Env exposes the underlying environment for advanced use (the
// benchmark harness reaches through this).
func (c *Cluster) Env() *core.Env { return c.env }

// ParseKV decodes one line into a (group key, value) pair for grouped
// runs.
type ParseKV = core.ParseKV

// Route tells a grouped run how to decode records: a ParseKV for the
// per-record path plus an optional columnar format that puts the run on
// the vectorized scan path. Custom parsers use Route{Parse: fn}.
type Route = core.Route

// TabKV routes "key\tvalue" lines — on the vectorized scan path, since
// the columnar decoder mirrors this format natively.
var TabKV Route = core.TabRoute()

// GroupedReport holds per-key early estimates.
type GroupedReport = core.GroupedReport

// RunGrouped computes job per group key with an error bound on every
// group — EARL applied to the native keyed shape of MapReduce data (an
// extension beyond the paper's global aggregates; see core.RunGrouped).
func (c *Cluster) RunGrouped(job Job, route Route, path string, opts Options) (GroupedReport, error) {
	return core.RunGrouped(c.env, job, route, path, opts)
}

// Watch is a maintained query handle over continuously ingested data:
// the initial Run's sample, per-resample sketch states and SSABE plan
// stay alive, and Refresh processes only data appended since — EARL's
// delta maintenance (§4.1) applied across the lifetime of a dataset
// instead of within one run. See internal/live for the mechanics.
type Watch struct{ q *live.Query }

// Watch runs job over path once (exactly like Run) and keeps the result
// maintainable: after Append, call Refresh to bring the early answer up
// to date at o(N) cost. Close releases the handle.
//
//	w, _ := cluster.Watch(earl.Mean(), "/data", earl.Options{Sigma: 0.05})
//	_ = cluster.AppendValues("/data", newBatch)
//	rep, _ := w.Refresh() // samples only the appended blocks
func (c *Cluster) Watch(job Job, path string, opts Options) (*Watch, error) {
	q, err := live.Watch(c.env, job, path, opts)
	if err != nil {
		return nil, err
	}
	return &Watch{q: q}, nil
}

// Report returns the most recent result without doing any work.
func (w *Watch) Report() Report { return w.q.Report() }

// Refresh brings the maintained answer up to date with the watched
// file, sampling only appended data and re-expanding only if the σ
// bound is violated.
func (w *Watch) Refresh() (Report, error) { return w.q.Refresh() }

// Refreshes returns how many Refresh calls have been applied.
func (w *Watch) Refreshes() int { return w.q.Refreshes() }

// SampleSize returns the records currently held in the maintained sample.
func (w *Watch) SampleSize() int { return w.q.SampleSize() }

// Close releases the handle; the last report stays readable.
func (w *Watch) Close() { w.q.Close() }

// MultiWatch is a maintained multi-statistic query: the shared-pass
// semantics of RunMulti kept fresh under appends. Every statistic rides
// the one maintained sample, so a Refresh costs a single delta scan no
// matter how many statistics are watched.
type MultiWatch struct{ q *live.Query }

// WatchMulti runs the shared-pass multi-statistic workflow once and
// keeps every statistic's resample set maintainable under appends.
func (c *Cluster) WatchMulti(jset []Job, path string, opts Options) (*MultiWatch, error) {
	q, err := live.WatchMulti(c.env, jset, path, opts)
	if err != nil {
		return nil, err
	}
	return &MultiWatch{q: q}, nil
}

// Reports returns the most recent per-statistic results, in job order,
// without doing any work.
func (w *MultiWatch) Reports() []Report { return w.q.Reports() }

// Refresh brings every statistic up to date with the watched file in
// one delta scan and returns the per-statistic reports.
func (w *MultiWatch) Refresh() ([]Report, error) { return w.q.RefreshAll() }

// Refreshes returns how many Refresh calls have been applied.
func (w *MultiWatch) Refreshes() int { return w.q.Refreshes() }

// SampleSize returns the records currently held in the shared
// maintained sample.
func (w *MultiWatch) SampleSize() int { return w.q.SampleSize() }

// Close releases the handle; the last reports stay readable.
func (w *MultiWatch) Close() { w.q.Close() }

// GroupedWatch is the per-key variant of Watch.
type GroupedWatch struct{ q *live.GroupedQuery }

// WatchGrouped runs the grouped workflow once and keeps every group's
// resample set maintainable under appends — including groups that first
// appear in appended data.
func (c *Cluster) WatchGrouped(job Job, route Route, path string, opts Options) (*GroupedWatch, error) {
	q, err := live.WatchGrouped(c.env, job, route, path, opts)
	if err != nil {
		return nil, err
	}
	return &GroupedWatch{q: q}, nil
}

// Report returns the most recent grouped result without doing any work.
func (w *GroupedWatch) Report() GroupedReport { return w.q.Report() }

// Refresh brings every group up to date with the watched file.
func (w *GroupedWatch) Refresh() (GroupedReport, error) { return w.q.Refresh() }

// Refreshes returns how many Refresh calls have been applied.
func (w *GroupedWatch) Refreshes() int { return w.q.Refreshes() }

// SampleSize returns the records currently held across every group's
// maintained sample.
func (w *GroupedWatch) SampleSize() int { return w.q.SampleSize() }

// Close releases the handle; the last report stays readable.
func (w *GroupedWatch) Close() { w.q.Close() }
