package earl_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/earl"
	"repro/internal/dfs"
	"repro/internal/workload"
)

// chaosData is the fixed workload every chaos scenario ingests: enough
// records over a small block size that reads span many blocks (so
// injected per-block faults actually strike) plus a couple of appends
// so the journal holds a realistic multi-commit history.
func chaosData(t *testing.T) ([]float64, []float64) {
	t.Helper()
	base, err := workload.NumericSpec{Dist: workload.Gaussian, N: 40_000, Seed: 81}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	tail, err := workload.NumericSpec{Dist: workload.Uniform, N: 4_000, Seed: 82}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return base, tail
}

// chaosCluster builds a cluster with the fixed chaos topology and
// ingests the workload as write + append commits.
func chaosCluster(t *testing.T, base, tail []float64) *earl.Cluster {
	t.Helper()
	cluster, err := earl.NewCluster(earl.ClusterConfig{BlockSize: 1 << 14, Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WriteValues("/data", base); err != nil {
		t.Fatal(err)
	}
	if err := cluster.AppendValues("/data", tail); err != nil {
		t.Fatal(err)
	}
	return cluster
}

// TestChaosReportsBitIdentical is the fault-injection acceptance
// contract: with a fixed seed, the report is bit-identical across
// {no faults, injected transient read errors, slow replicas,
// crash + journal recovery} — and at every Parallelism in {1, 4, 0}.
// Transient faults may cost retries and slow replicas may cost time,
// but neither may ever change an answer; a recovered cluster answers
// exactly as the original did at the replayed commit point.
func TestChaosReportsBitIdentical(t *testing.T) {
	base, tail := chaosData(t)
	opts := earl.Options{Sigma: 0.05, Seed: 84}

	var reference *earl.Report
	for _, par := range []int{1, 4, 0} {
		opts.Parallelism = par

		clean := chaosCluster(t, base, tail)
		want, err := clean.Run(earl.Mean(), "/data", opts)
		if err != nil {
			t.Fatalf("par %d: clean run: %v", par, err)
		}
		if reference == nil {
			ref := want
			reference = &ref
		} else if !reflect.DeepEqual(want, *reference) {
			t.Fatalf("par %d: clean report differs across parallelism:\n%+v\nvs\n%+v", par, want, *reference)
		}

		scenarios := []struct {
			name string
			plan earl.FaultPlan
		}{
			{"read-errors", earl.FaultPlan{Seed: 85, ReadErrorRate: 0.25}},
			{"slow-replicas", earl.FaultPlan{Seed: 85, SlowNodes: []int{1, 3}, SlowDelay: 100 * time.Microsecond}},
		}
		for _, sc := range scenarios {
			cluster := chaosCluster(t, base, tail)
			cluster.SetFaultPlan(&sc.plan)
			got, err := cluster.Run(earl.Mean(), "/data", opts)
			if err != nil {
				t.Fatalf("par %d, %s: %v", par, sc.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("par %d, %s: report changed under injected faults:\n got %+v\nwant %+v", par, sc.name, got, want)
			}
		}

		// Crash + recover: the cluster loses power mid-commit right after
		// the ingest (torn final write), the journal image is replayed,
		// and the recovered cluster must answer exactly as the original.
		crashed := chaosCluster(t, base, tail)
		crashed.SetFaultPlan(&earl.FaultPlan{CrashAtCommit: crashed.Env().FS.CommitSeq() + 1, TornTail: true})
		if err := crashed.AppendValues("/data", []float64{1, 2, 3}); !errors.Is(err, dfs.ErrCrashed) {
			t.Fatalf("par %d: crash-at-commit append returned %v, want ErrCrashed", par, err)
		}
		recovered, rst, err := earl.RecoverCluster(earl.ClusterConfig{BlockSize: 1 << 14, Seed: 83}, crashed.JournalBytes())
		if err != nil {
			t.Fatalf("par %d: recover: %v", par, err)
		}
		if !rst.TornTail {
			t.Fatalf("par %d: recovery missed the torn tail: %+v", par, rst)
		}
		got, err := recovered.Run(earl.Mean(), "/data", opts)
		if err != nil {
			t.Fatalf("par %d: recovered run: %v", par, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("par %d: recovered report differs:\n got %+v\nwant %+v", par, got, want)
		}
		js := recovered.JournalStats()
		if !js.Recovered || js.Recovery.Commits != rst.Commits {
			t.Fatalf("par %d: recovered cluster journal stats %+v", par, js)
		}
	}
}
