package earl_test

import (
	"fmt"
	"math"
	"testing"

	"repro/earl"
	"repro/internal/workload"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	cluster, err := earl.NewCluster(earl.ClusterConfig{BlockSize: 1 << 14, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	xs, err := workload.NumericSpec{Dist: workload.Uniform, N: 100_000, Seed: 2}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WriteValues("/data", xs); err != nil {
		t.Fatal(err)
	}
	rep, err := cluster.Run(earl.Mean(), "/data", earl.Options{Sigma: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact, n, err := cluster.RunExact(earl.Mean(), "/data")
	if err != nil {
		t.Fatal(err)
	}
	if n != len(xs) {
		t.Fatalf("exact processed %d records", n)
	}
	if rel := math.Abs(rep.Estimate-exact) / exact; rel > 0.1 {
		t.Fatalf("early %v vs exact %v", rep.Estimate, exact)
	}
	if rep.SampleSize >= n/2 {
		t.Fatalf("no sampling advantage: %d of %d", rep.SampleSize, n)
	}
	if m := cluster.Metrics(); m.JobStartups == 0 {
		t.Fatal("metrics not wired")
	}
	cluster.ResetMetrics()
	if m := cluster.Metrics(); m.JobStartups != 0 {
		t.Fatal("reset did not clear metrics")
	}
}

func TestPublicQuantile(t *testing.T) {
	if _, err := earl.Quantile(0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := earl.Quantile(2); err == nil {
		t.Fatal("bad q should error")
	}
}

func TestPublicNodeControl(t *testing.T) {
	cluster, err := earl.NewCluster(earl.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.KillNode(0); err != nil {
		t.Fatal(err)
	}
	if err := cluster.ReviveNode(0); err != nil {
		t.Fatal(err)
	}
}

func ExampleCluster_Run() {
	cluster, _ := earl.NewCluster(earl.ClusterConfig{Seed: 7})
	xs := make([]float64, 50_000)
	for i := range xs {
		xs[i] = float64(i % 1000)
	}
	_ = cluster.WriteValues("/numbers", xs)
	rep, _ := cluster.Run(earl.Mean(), "/numbers", earl.Options{Sigma: 0.05, Seed: 8})
	fmt.Println(rep.Converged, rep.UsedFull)
	// Output: true false
}

func TestPublicKMeans(t *testing.T) {
	cluster, err := earl.NewCluster(earl.ClusterConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	pts, _, err := workload.MixtureSpec{K: 3, Dim: 2, N: 30_000, Spread: 1, Sep: 90, Seed: 22}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WriteFile("/pts", workload.EncodePoints(pts)); err != nil {
		t.Fatal(err)
	}
	rep, err := cluster.RunKMeans("/pts", earl.KMeans{K: 3, Seed: 23}, earl.KMeansOptions{Sigma: 0.06, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Centers) != 3 {
		t.Fatalf("centers = %d", len(rep.Centers))
	}
	if !rep.Converged {
		t.Fatalf("kmeans did not converge: %+v", rep)
	}
	if cluster.Env() == nil {
		t.Fatal("Env accessor broken")
	}
}
