package earl

import (
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/plan"
)

// PlanSpec is the engine-wide canonical query description — the same
// JSON spec earld's HTTP API accepts and earlctl's flags build. A Query
// builder produces one; advanced callers may also construct it directly
// and hand it to RunPlan / WatchPlan.
type PlanSpec = plan.Spec

// PlanResult is a plan run's outcome: per-statistic Reports for scalar
// plans, per-group Groups when the plan groups.
type PlanResult = core.PlanResult

// Query is a fluent builder over the query-plan algebra: σ (Filter),
// π (Derive), γ (GroupBy) and the aggregate set (Stats), compiled down
// onto the sampling engine with the filter pushed BELOW sampling.
//
//	q := earl.NewQuery("/data").
//		Filter("v > 0 && v < 100").
//		Derive("log(v)").
//		Stats("mean", "p95")
//	res, err := q.Run(cluster, earl.Options{Sigma: 0.05})
//
// Expressions read the parsed record: v (alias value) is the numeric
// value, key is the record's group key (its use switches the input to
// "key\tvalue" records). The filter runs before sampling — sample-size
// planning, the expansion cap and the reported confidence intervals are
// all relative to the filtered subpopulation (sum/count estimate the
// subpopulation's total/cardinality). Grouping is by the record key
// (GroupBy("key")) or by a numeric bucketing expression, e.g.
// GroupBy("floor(v / 10)"); grouped plans take exactly one statistic.
type Query struct {
	spec PlanSpec
}

// NewQuery starts a plan over the records at path.
func NewQuery(path string) *Query {
	return &Query{spec: PlanSpec{Path: path}}
}

// Filter sets σ: a boolean expression records must satisfy, applied
// below sampling (filter-then-sample).
func (q *Query) Filter(expr string) *Query {
	q.spec.Filter = expr
	return q
}

// Derive sets π: a numeric expression producing the analyzed value in
// place of the record's own (evaluated on the raw record).
func (q *Query) Derive(expr string) *Query {
	q.spec.Derive = expr
	return q
}

// GroupBy sets γ: "key" for the record's own key, or a numeric
// expression whose (canonically rendered) value labels each group.
func (q *Query) GroupBy(expr string) *Query {
	q.spec.GroupBy = expr
	return q
}

// Stats names the statistics to compute (jobs.ByName spellings: mean,
// sum, count, median, variance, stddev, proportion, pNN, q0.NN).
// Several statistics share ONE sampling pass; default is mean.
func (q *Query) Stats(names ...string) *Query {
	q.spec.Stats = append([]string(nil), names...)
	return q
}

// Spec returns the accumulated plan spec (not yet normalized) — what
// Run and Watch hand to the engine, and what serializes onto earld's
// wire format verbatim.
func (q *Query) Spec() PlanSpec { return q.spec }

// Run executes the plan on c. Spec knobs left unset (σ, sampler, seed,
// parallelism) inherit from opts.
func (q *Query) Run(c *Cluster, opts Options) (*PlanResult, error) {
	return c.RunPlan(q.spec, opts)
}

// Watch executes the plan once and keeps it maintainable under appended
// data, exactly like Watch/WatchGrouped for plan-free queries.
func (q *Query) Watch(c *Cluster, opts Options) (*PlanWatch, error) {
	return c.WatchPlan(q.spec, opts)
}

// RunPlan executes a plan spec end to end (σ/π/γ pushed into the
// sampling sources; degenerate specs take the historical paths
// bit-identically).
func (c *Cluster) RunPlan(spec PlanSpec, opts Options) (*PlanResult, error) {
	return core.RunPlan(c.env, spec, opts)
}

// PlanWatch is a maintained plan: the compiled σ/π/γ program rides the
// retained samplers, so every Refresh draws post-filter transformed
// records from appended data only. Exactly one of Reports/Groups is
// populated, matching the plan's shape.
type PlanWatch struct {
	q  *live.Query
	gq *live.GroupedQuery
}

// WatchPlan opens a maintained query from a plan spec.
func (c *Cluster) WatchPlan(spec PlanSpec, opts Options) (*PlanWatch, error) {
	q, gq, err := live.WatchPlan(c.env, spec, opts)
	if err != nil {
		return nil, err
	}
	return &PlanWatch{q: q, gq: gq}, nil
}

// Grouped reports whether the watch maintains a grouped plan.
func (w *PlanWatch) Grouped() bool { return w.gq != nil }

// Result returns the most recent result without doing any work.
func (w *PlanWatch) Result() *PlanResult {
	if w.gq != nil {
		rep := w.gq.Report()
		return &PlanResult{Groups: &rep}
	}
	return &PlanResult{Reports: w.q.Reports()}
}

// Refresh brings the maintained plan up to date with the watched file,
// sampling only appended data (post-filter), and returns the result.
func (w *PlanWatch) Refresh() (*PlanResult, error) {
	if w.gq != nil {
		rep, err := w.gq.Refresh()
		if err != nil {
			return nil, err
		}
		return &PlanResult{Groups: &rep}, nil
	}
	reps, err := w.q.RefreshAll()
	if err != nil {
		return nil, err
	}
	return &PlanResult{Reports: reps}, nil
}

// Refreshes returns how many Refresh calls have been applied.
func (w *PlanWatch) Refreshes() int {
	if w.gq != nil {
		return w.gq.Refreshes()
	}
	return w.q.Refreshes()
}

// SampleSize returns the records currently held in the maintained
// (post-filter) sample.
func (w *PlanWatch) SampleSize() int {
	if w.gq != nil {
		return w.gq.SampleSize()
	}
	return w.q.SampleSize()
}

// Close releases the handle; the last result stays readable.
func (w *PlanWatch) Close() {
	if w.gq != nil {
		w.gq.Close()
		return
	}
	w.q.Close()
}
