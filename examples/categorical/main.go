// Command categorical exercises Appendix A: EARL over categorical data.
// The statistic is a proportion of "successes" (here: the fraction of
// requests that errored); the binomial proportion is asymptotically
// normal, so a z-based confidence interval applies on top of the early
// estimate. The example also demonstrates the dependent-data path: an
// AR(1) series where the i.i.d. bootstrap understates the error and the
// moving-block bootstrap of Appendix A fixes it.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"repro/earl"
	"repro/internal/bootstrap"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	cluster, err := earl.NewCluster(earl.ClusterConfig{Seed: 41})
	if err != nil {
		log.Fatal(err)
	}

	// --- Categorical: error-rate estimation. ---------------------------
	const trueRate = 0.073
	xs, err := workload.CategoricalSpec{P: trueRate, N: 800_000, Seed: 42}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.WriteValues("/logs/errors", xs); err != nil {
		log.Fatal(err)
	}
	rep, err := cluster.Run(earl.Proportion(), "/logs/errors", earl.Options{Sigma: 0.05, Seed: 43})
	if err != nil {
		log.Fatal(err)
	}
	// Appendix A's z-interval from the same sample size.
	z, _ := stats.NormalQuantile(0.975)
	half := z * math.Sqrt(rep.Estimate*(1-rep.Estimate)/float64(rep.SampleSize))
	fmt.Printf("error rate ≈ %.4f (true %.4f) from %d of ~%d records\n",
		rep.Estimate, trueRate, rep.SampleSize, rep.EstTotalN)
	fmt.Printf("  bootstrap cv %.3f; z-based 95%% interval ±%.4f\n", rep.CV, half)

	// --- Dependent data: block bootstrap (Appendix A). -----------------
	series, err := workload.AR1Spec{Phi: 0.85, Sigma: 1, Mu: 10, N: 20_000, Seed: 44}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	rngA := rand.New(rand.NewPCG(45, 1))
	rngB := rand.New(rand.NewPCG(45, 2))
	iid, err := bootstrap.MonteCarlo(rngA, series, bootstrap.Mean, 200)
	if err != nil {
		log.Fatal(err)
	}
	blockLen := bootstrap.AutoBlockLength(len(series)) * 4
	blk, err := bootstrap.MovingBlock(rngB, series, blockLen, bootstrap.Mean, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAR(1) series mean stderr: iid bootstrap %.4f vs block bootstrap %.4f (block=%d)\n",
		iid.StdErr, blk.StdErr, blockLen)
	fmt.Println("  the iid bootstrap understates the error on dependent data — Appendix A's point.")
}
