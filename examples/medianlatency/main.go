// Command medianlatency reproduces the paper's motivating analytics
// scenario for the median (§6.2): a heavy-tailed service-latency log
// where the mean is useless, the median is what the operator wants, and
// no closed-form error bound exists — exactly the statistic the
// bootstrap (and not the jackknife) can attach an error to.
//
// It also contrasts the p50 with a p99 tail quantile, both served early.
package main

import (
	"fmt"
	"log"

	"repro/earl"
	"repro/internal/workload"
)

func main() {
	cluster, err := earl.NewCluster(earl.ClusterConfig{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Pareto latencies: most requests fast, a long expensive tail.
	xs, err := workload.NumericSpec{Dist: workload.Pareto, N: 500_000, Seed: 12}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	for i := range xs {
		xs[i] *= 12.5 // milliseconds scale
	}
	if err := cluster.WriteValues("/logs/latency", xs); err != nil {
		log.Fatal(err)
	}

	run := func(name string, job earl.Job) earl.Report {
		cluster.ResetMetrics()
		rep, err := cluster.Run(job, "/logs/latency", earl.Options{Sigma: 0.05, Seed: 13})
		if err != nil {
			log.Fatal(err)
		}
		exact, _, err := cluster.RunExact(job, "/logs/latency")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s early %8.3fms (cv %.3f, sample %6d ≈ %4.1f%%)   exact %8.3fms   rel.err %5.2f%%\n",
			name, rep.Estimate, rep.CV, rep.SampleSize, 100*rep.FractionP,
			exact, 100*abs(rep.Estimate-exact)/exact)
		return rep
	}

	fmt.Println("service latency percentiles with 5% error bound (EARL vs exact):")
	run("p50", earl.Median())
	p90, err := earl.Quantile(0.9)
	if err != nil {
		log.Fatal(err)
	}
	run("p90", p90)
	p99, err := earl.Quantile(0.99)
	if err != nil {
		log.Fatal(err)
	}
	run("p99", p99)

	fmt.Println("\nnote: tail quantiles need larger samples — watch the sample column grow.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
