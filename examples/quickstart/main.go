// Command quickstart is the smallest end-to-end EARL run: load a
// synthetic numeric data set into the simulated cluster, ask for the
// mean with a 5% error bound, and compare the early answer (and how
// little data it touched) against the exact stock-MapReduce job.
package main

import (
	"fmt"
	"log"

	"repro/earl"
	"repro/internal/workload"
)

func main() {
	cluster, err := earl.NewCluster(earl.ClusterConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// One million uniform records, one number per line — the paper's
	// synthetic setting, scaled to a laptop.
	xs, err := workload.NumericSpec{Dist: workload.Uniform, N: 1_000_000, Seed: 2}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.WriteValues("/data/uniform", xs); err != nil {
		log.Fatal(err)
	}
	cluster.ResetMetrics()

	rep, err := cluster.Run(earl.Mean(), "/data/uniform", earl.Options{
		Sigma: 0.05, // accurate to within 5%
		Seed:  3,
	})
	if err != nil {
		log.Fatal(err)
	}
	early := cluster.Metrics()

	cluster.ResetMetrics()
	exact, n, err := cluster.RunExact(earl.Mean(), "/data/uniform")
	if err != nil {
		log.Fatal(err)
	}
	full := cluster.Metrics()

	fmt.Printf("EARL early result : %.4f  (cv %.3f, 95%% CI [%.4f, %.4f])\n",
		rep.Estimate, rep.CV, rep.CILo, rep.CIHi)
	fmt.Printf("  sample          : %d of ~%d records (%.2f%%), B=%d bootstraps, %d iteration(s)\n",
		rep.SampleSize, rep.EstTotalN, 100*rep.FractionP, rep.B, rep.Iterations)
	fmt.Printf("  bytes read      : %d (early) vs %d (exact scan)\n", early.BytesRead, full.BytesRead)
	fmt.Printf("exact result      : %.4f over %d records\n", exact, n)
	fmt.Printf("relative error    : %.4f%%\n", 100*abs(rep.Estimate-exact)/exact)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
