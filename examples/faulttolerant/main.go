// Command faulttolerant demonstrates §3.4: on a cluster losing machines
// mid-job, stock Hadoop restarts tasks (or fails once replicas run out),
// while EARL simply finishes on the surviving sample and reports the
// accuracy it actually achieved — no task restarts needed.
//
// The run kills 2 of 5 machines while the job streams.
package main

import (
	"fmt"
	"log"

	"repro/earl"
	"repro/internal/workload"
)

func main() {
	cluster, err := earl.NewCluster(earl.ClusterConfig{
		DataNodes:   5,
		Replication: 2,
		Seed:        31,
	})
	if err != nil {
		log.Fatal(err)
	}
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: 400_000, Seed: 32}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.WriteValues("/data/sensor", xs); err != nil {
		log.Fatal(err)
	}

	exact, _, err := cluster.RunExact(earl.Mean(), "/data/sensor")
	if err != nil {
		log.Fatal(err)
	}

	// Kill machines once the job is visibly running.
	go func() {
		for cluster.Metrics().RecordsMapped < 200 {
		}
		if err := cluster.KillNode(3); err != nil {
			log.Print(err)
		}
		if err := cluster.KillNode(4); err != nil {
			log.Print(err)
		}
		fmt.Println("!! killed nodes 3 and 4 mid-job")
	}()

	rep, err := cluster.Run(earl.Mean(), "/data/sensor", earl.Options{Sigma: 0.05, Seed: 33})
	if err != nil {
		log.Fatalf("EARL should survive node loss, got: %v", err)
	}

	fmt.Printf("early result despite failures : %.4f (cv %.3f)\n", rep.Estimate, rep.CV)
	fmt.Printf("exact (pre-failure) answer    : %.4f\n", exact)
	fmt.Printf("relative error                : %.3f%%\n", 100*abs(rep.Estimate-exact)/exact)
	fmt.Printf("mapper tasks lost             : %d (not restarted — §3.4)\n", rep.FailedMaps)
	fmt.Printf("converged to σ=5%%             : %v\n", rep.Converged)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
