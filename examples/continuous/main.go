// Command continuous demonstrates maintained queries over continuously
// ingested data: one Watch gives the first early answer, then batches of
// new records stream in via Append and each Refresh brings the answer up
// to date by sampling only the appended blocks — EARL's delta
// maintenance (§4.1) applied across the lifetime of a dataset. The
// simcost counters printed per cycle show the point: each refresh reads
// a sliver of the delta, while a from-scratch run would start over on an
// ever-bigger file.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/earl"
	"repro/internal/workload"
)

func main() {
	cluster, err := earl.NewCluster(earl.ClusterConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Day zero: half a million Gaussian records.
	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: 500_000, Seed: 2}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.WriteValues("/stream/metrics", xs); err != nil {
		log.Fatal(err)
	}
	cluster.ResetMetrics()

	w, err := cluster.Watch(earl.Mean(), "/stream/metrics", earl.Options{
		Sigma: 0.05,
		Seed:  3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	first := w.Report()
	fmt.Printf("first answer : %.4f (cv %.4f) from a %d-record sample of ~%d\n",
		first.Estimate, first.CV, first.SampleSize, first.EstTotalN)

	// Data keeps arriving: five batches of 100k records, each appended as
	// fresh replicated blocks; existing blocks and splits are untouched.
	total := 500_000
	for day := 1; day <= 5; day++ {
		batch, err := workload.NumericSpec{
			Dist: workload.Gaussian, N: 100_000, Seed: uint64(100 + day),
		}.Generate()
		if err != nil {
			log.Fatal(err)
		}
		if err := cluster.AppendValues("/stream/metrics", batch); err != nil {
			log.Fatal(err)
		}
		total += len(batch)

		before := cluster.Metrics()
		rep, err := w.Refresh()
		if err != nil {
			log.Fatal(err)
		}
		cost := cluster.Metrics().Sub(before)
		fmt.Printf("day %d refresh: %.4f (cv %.4f, sample %d) — read %5d records of the %d appended (%d on disk)\n",
			day, rep.Estimate, rep.CV, rep.SampleSize,
			cost.RecordsRead, len(batch), total)
	}

	// The receipts: the maintained answer vs the exact truth over all
	// data ingested so far.
	exact, n, err := cluster.RunExact(earl.Mean(), "/stream/metrics")
	if err != nil {
		log.Fatal(err)
	}
	last := w.Report()
	off := math.Abs((last.Estimate - exact) / exact)
	fmt.Printf("exact        : %.4f over %d records — maintained answer off by %.3f%%\n",
		exact, n, 100*off)
}
