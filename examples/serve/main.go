// Command serve is earld's load generator: it boots the approximate-query
// server in-process, points K concurrent HTTP clients at one identical
// maintained query, and streams appends at the watched file. The point it
// demonstrates is the shared-watch registry's economics: K clients
// watching the same query cost ONE delta refresh per append — o(K·N)
// records read — and every client reads the bit-identical report,
// because they all subscribe to the same underlying live.Query.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/workload"
)

const (
	clients  = 8       // K concurrent clients, all issuing the same watch
	initialN = 400_000 // records at day zero
	batchN   = 100_000 // records per appended batch
	batches  = 4
)

type watchResp struct {
	ID        string `json:"id"`
	Shared    bool   `json:"shared"`
	Refreshes int    `json:"refreshes"`
	Report    struct {
		Estimate   float64
		CV         float64
		SampleSize int
	} `json:"report"`
}

func main() {
	env, err := core.NewEnv(core.EnvConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(env, serve.Config{MaxInFlight: 4, MaxQueue: 2 * clients})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()

	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: initialN, Seed: 2}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	if err := env.FS.WriteFile("/stream/metrics", workload.EncodeLinesFixed(xs)); err != nil {
		log.Fatal(err)
	}
	env.Metrics.Reset()

	// K clients open the identical maintained query concurrently. The
	// registry runs it once; the rest subscribe.
	spec := `{"job":"mean","path":"/stream/metrics","sigma":0.05,"seed":3}`
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var w watchResp
			postJSON(base+"/watch", spec, &w)
			ids[c] = w.ID
		}(c)
	}
	wg.Wait()
	after := env.Metrics.Snapshot()
	fmt.Printf("%d clients opened the same watch: %d initial run(s), %d records read (not %d×)\n",
		clients, after.JobStartups, after.RecordsRead, clients)

	// Stream appends; after each, every client polls the watch.
	total := initialN
	for b := 1; b <= batches; b++ {
		delta, err := workload.NumericSpec{Dist: workload.Gaussian, N: batchN, Seed: uint64(10 + b)}.Generate()
		if err != nil {
			log.Fatal(err)
		}
		postJSON(base+"/append", encodeIngest("/stream/metrics", delta), nil)
		total += batchN

		before := env.Metrics.Snapshot()
		reports := make([]watchResp, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				getJSON(base+"/watch/"+ids[c], &reports[c])
			}(c)
		}
		wg.Wait()
		cost := env.Metrics.Snapshot().Sub(before)

		for c := 1; c < clients; c++ {
			if reports[c].Report != reports[0].Report {
				log.Fatalf("client %d read a different report: %+v vs %+v", c, reports[c].Report, reports[0].Report)
			}
		}
		fmt.Printf("batch %d: +%d records → %d clients polled, %d refresh(es), %d records read "+
			"(a from-scratch run per client would touch ~%d)\n",
			b, batchN, clients, cost.Refreshes, cost.RecordsRead, clients*reports[0].Report.SampleSize)
		fmt.Printf("         shared answer %.4f (cv %.4f) from a %d-record sample of %d\n",
			reports[0].Report.Estimate, reports[0].Report.CV, reports[0].Report.SampleSize, total)
	}

	m := srv.Metrics()
	fmt.Printf("\nserver totals: %d watches opened (%d deduped), %d refreshes served for %d appends, "+
		"%d one-shot queries\n",
		m.Server.WatchesOpened, m.Server.WatchesShared, m.Server.RefreshesServed,
		m.Server.Appends, m.Server.Queries)
	if m.Server.RefreshesServed != batches {
		log.Fatalf("expected exactly %d refreshes (one per append), got %d", batches, m.Server.RefreshesServed)
	}
}

func encodeIngest(path string, values []float64) string {
	b, err := json.Marshal(map[string]any{"path": path, "values": values})
	if err != nil {
		log.Fatal(err)
	}
	return string(b)
}

func postJSON(url, body string, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: status %d: %v", url, resp.StatusCode, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("GET %s: status %d: %v", url, resp.StatusCode, e)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
