// Command multistat demonstrates shared-pass multi-statistic queries —
// the dashboard workload: mean, p50, p95 and count of the same column,
// answered early from ONE pilot, ONE sample and ONE pass over the
// records. It measures simcost.RecordsRead for each statistic alone and
// for the 4-statistic shared pass, showing the shared pass reads no
// more than the most demanding single statistic (≤1.1×, the engine's
// acceptance criterion), then keeps all four fresh under appends with
// one delta refresh per batch via WatchMulti.
package main

import (
	"fmt"
	"log"

	"repro/earl"
	"repro/internal/workload"
)

func main() {
	p50, err := earl.JobByName("p50")
	if err != nil {
		log.Fatal(err)
	}
	p95, err := earl.JobByName("p95")
	if err != nil {
		log.Fatal(err)
	}
	jset := []earl.Job{earl.Mean(), p50, p95, earl.Count()}

	xs, err := workload.NumericSpec{Dist: workload.Gaussian, N: 300_000, Seed: 2}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	newCluster := func() *earl.Cluster {
		cluster, err := earl.NewCluster(earl.ClusterConfig{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		if err := cluster.WriteValues("/metrics/latency", xs); err != nil {
			log.Fatal(err)
		}
		cluster.ResetMetrics()
		return cluster
	}
	opts := earl.Options{Sigma: 0.05, Seed: 3}

	// Each statistic alone: four separate runs, four separate scans.
	fmt.Println("-- one run per statistic (four separate sampling passes) --")
	var totalSeparate, maxSingle int64
	for _, job := range jset {
		cluster := newCluster()
		rep, err := cluster.Run(job, "/metrics/latency", opts)
		if err != nil {
			log.Fatal(err)
		}
		read := cluster.Metrics().RecordsRead
		totalSeparate += read
		if read > maxSingle {
			maxSingle = read
		}
		fmt.Printf("  %-14s: %12.4f  (cv %.3f, B=%d)  %5d records read\n",
			rep.Job, rep.Estimate, rep.CV, rep.B, read)
	}

	// All four in one shared pass.
	cluster := newCluster()
	reps, err := cluster.RunMulti(jset, "/metrics/latency", opts)
	if err != nil {
		log.Fatal(err)
	}
	multiRead := cluster.Metrics().RecordsRead
	fmt.Println("-- one shared-pass run (RunMulti) --")
	for _, rep := range reps {
		fmt.Printf("  %-14s: %12.4f  (cv %.3f, B=%d)\n", rep.Job, rep.Estimate, rep.CV, rep.B)
	}
	fmt.Printf("  records read  : %d — vs %d for four separate runs (%.1fx) and %d for the largest single (%.2fx ≤ 1.1x)\n",
		multiRead, totalSeparate, float64(totalSeparate)/float64(multiRead),
		maxSingle, float64(multiRead)/float64(maxSingle))

	// Maintained: all four statistics stay fresh under appends with one
	// delta refresh per batch.
	w, err := cluster.WatchMulti(jset, "/metrics/latency", opts)
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	fmt.Println("-- maintained under ingest (WatchMulti) --")
	for batch := 1; batch <= 2; batch++ {
		delta, err := workload.NumericSpec{Dist: workload.Gaussian, N: 50_000, Seed: 10 + uint64(batch)}.Generate()
		if err != nil {
			log.Fatal(err)
		}
		if err := cluster.AppendValues("/metrics/latency", delta); err != nil {
			log.Fatal(err)
		}
		before := cluster.Metrics()
		fresh, err := w.Refresh()
		if err != nil {
			log.Fatal(err)
		}
		cost := cluster.Metrics().Sub(before)
		fmt.Printf("  append %d      : +%d records; refresh read %d records for all %d statistics\n",
			batch, len(delta), cost.RecordsRead, len(jset))
		for _, rep := range fresh {
			fmt.Printf("    %-12s: %12.4f  (cv %.3f, sample %d)\n", rep.Job, rep.Estimate, rep.CV, rep.SampleSize)
		}
	}
}
