// Command groupedmetrics runs EARL per group key — the native shape of
// MapReduce data. The scenario: per-service request latencies in a
// "service\tlatency" log; every service gets an early mean with its own
// error bound, from one pass over a small uniform sample. Grouped runs
// are an extension beyond the paper's global aggregates (see
// core.RunGrouped).
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"strings"
)

import "repro/earl"

func main() {
	cluster, err := earl.NewCluster(earl.ClusterConfig{Seed: 51})
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize a service log: 6 services with distinct latency levels.
	services := []struct {
		name string
		mean float64
	}{
		{"auth", 12}, {"search", 85}, {"checkout", 140},
		{"images", 30}, {"api", 55}, {"billing", 220},
	}
	rng := rand.New(rand.NewPCG(52, 53))
	var sb strings.Builder
	const n = 500_000
	for i := 0; i < n; i++ {
		s := services[rng.IntN(len(services))]
		lat := s.mean * (0.5 + rng.ExpFloat64())
		fmt.Fprintf(&sb, "%s\t%012.5f\n", s.name, lat)
	}
	if err := cluster.WriteFile("/logs/byservice", []byte(sb.String())); err != nil {
		log.Fatal(err)
	}
	cluster.ResetMetrics()

	rep, err := cluster.RunGrouped(earl.Mean(), earl.TabKV, "/logs/byservice", earl.Options{
		Sigma: 0.05, Seed: 54,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := cluster.Metrics()

	fmt.Printf("per-service mean latency with 5%% error bounds (one sampling job, %d of %d records):\n",
		rep.SampleSize, n)
	for _, k := range rep.SortedGroupKeys() {
		g := rep.Groups[k]
		fmt.Printf("  %-9s %9.2f ms  (cv %.3f, %5d samples)\n", k, g.Estimate, g.CV, g.SampleSize)
	}
	fmt.Printf("converged=%v in %d iteration(s); %.2f MB read of %.2f MB input\n",
		rep.Converged, rep.Iterations, float64(m.BytesRead)/(1<<20), float64(sb.Len())/(1<<20))
}
