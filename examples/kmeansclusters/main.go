// Command kmeansclusters runs the paper's advanced-mining experiment
// (§6.3, Fig. 7): K-Means over a Gaussian-mixture point cloud, once as
// the stock iterated-MapReduce job (one MR job per Lloyd iteration, full
// scans) and once through EARL (sample, fit, bootstrap the clustering
// cost, expand until the 5% bound holds). It verifies the paper's
// quality claim — EARL's centroids land within 5% of the true ones —
// and shows the resource gap.
package main

import (
	"fmt"
	"log"

	"repro/earl"
	"repro/internal/jobs"
	"repro/internal/workload"
)

func main() {
	cluster, err := earl.NewCluster(earl.ClusterConfig{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	const k = 5
	pts, truth, err := workload.MixtureSpec{
		K: k, Dim: 3, N: 200_000, Spread: 2.0, Sep: 150, Seed: 22,
	}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.WriteFile("/mining/points", workload.EncodePoints(pts)); err != nil {
		log.Fatal(err)
	}

	kcfg := earl.KMeans{K: k, Seed: 23}

	cluster.ResetMetrics()
	rep, err := cluster.RunKMeans("/mining/points", kcfg, earl.KMeansOptions{Sigma: 0.05, Seed: 24})
	if err != nil {
		log.Fatal(err)
	}
	early := cluster.Metrics()
	earlErr, err := jobs.CentroidError(rep.Centers, truth)
	if err != nil {
		log.Fatal(err)
	}

	cluster.ResetMetrics()
	stock, err := kcfg.FitMR(cluster.Env().Engine, "/mining/points", 0)
	if err != nil {
		log.Fatal(err)
	}
	full := cluster.Metrics()
	stockErr, err := jobs.CentroidError(stock.Centers, truth)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("EARL K-Means : sample %d of %d pts, cost cv %.3f, Lloyd iters %d\n",
		rep.SampleSize, len(pts), rep.CV, rep.LloydIters)
	fmt.Printf("  centroid error vs truth: %.2f%%  (paper's bound: 5%%)\n", 100*earlErr)
	fmt.Printf("  bytes read %d, MR jobs %d\n", early.BytesRead, early.JobStartups)
	fmt.Printf("stock MR     : full scans × %d Lloyd iterations\n", stock.Iterations)
	fmt.Printf("  centroid error vs truth: %.2f%%\n", 100*stockErr)
	fmt.Printf("  bytes read %d, MR jobs %d\n", full.BytesRead, full.JobStartups)
	fmt.Printf("I/O reduction: %.1fx\n", float64(full.BytesRead)/float64(early.BytesRead))
}
